package logicsim

import (
	"fmt"

	"repro/internal/ckt"
	"repro/internal/engine"
	"repro/internal/stats"
)

// FrameTrace is a K-cycle, 64-way bit-parallel simulation of a
// sequential circuit: each cycle evaluates the combinational frame
// with fresh random primary-input words while the flop state columns
// are carried from the previous cycle's D-pin values. It retains the
// per-cycle PI, state and PO words — everything a fault-propagation
// pass needs to re-evaluate any frame against a perturbed state and
// diff it against the fault-free run.
type FrameTrace struct {
	Circuit *ckt.Circuit
	// N is the vector count; Cycles the number of simulated frames.
	N, Cycles int
	// PI[t] holds cycle t's primary-input words, flat piIndex*nWords
	// in Circuit.Inputs() order.
	PI [][]uint64
	// State[t] holds the flop state at the START of cycle t, flat
	// flopIndex*nWords in Circuit.DFFs() order. State[Cycles] is the
	// final state after the last frame.
	State [][]uint64
	// PO[t] holds cycle t's primary-output words, flat poIndex*nWords
	// in Circuit.Outputs() order.
	PO [][]uint64

	order    []int
	nWords   int
	lastMask uint64
	maxFanin int
}

// NWords returns the number of 64-bit words per signal column.
func (tr *FrameTrace) NWords() int { return tr.nWords }

// MaxFanin returns the widest combinational fanin in the frame — the
// scratch size EvalFrameChunk needs.
func (tr *FrameTrace) MaxFanin() int { return tr.maxFanin }

// LastMask returns the valid-lane mask of the final word of every
// column (all ones when N is a multiple of 64). Callers mutating
// state columns must re-apply it so perturbations never leak into the
// padding lanes.
func (tr *FrameTrace) LastMask() uint64 { return tr.lastMask }

// SimulateFrames runs cycles clock cycles of bit-parallel simulation.
// Primary inputs draw fresh random words every cycle (probability 0.5,
// consumed from rng in Inputs() order, cycle by cycle — the vector set
// is deterministic in the seed). initState gives the flops' reset
// values in DFFs() order; nil means all-zero reset. The same initial
// state is applied to every one of the 64·⌈nVectors/64⌉ parallel
// vector lanes.
func SimulateFrames(c *ckt.Circuit, cycles, nVectors int, rng *stats.RNG, initState []bool) (*FrameTrace, error) {
	cc, err := engine.Compile(c)
	if err != nil {
		return nil, err
	}
	return SimulateFramesCompiled(cc, cycles, nVectors, rng, initState)
}

// SimulateFramesCompiled is SimulateFrames over a pre-compiled
// circuit, reusing the handle's topological order instead of
// re-deriving it per trace.
func SimulateFramesCompiled(cc *engine.CompiledCircuit, cycles, nVectors int, rng *stats.RNG, initState []bool) (*FrameTrace, error) {
	c := cc.Circuit()
	if cycles < 1 {
		return nil, fmt.Errorf("logicsim: SimulateFrames needs cycles >= 1, got %d", cycles)
	}
	if nVectors <= 0 {
		nVectors = DefaultVectors
	}
	flops := c.DFFs()
	if initState != nil && len(initState) != len(flops) {
		return nil, fmt.Errorf("logicsim: initState has %d bits for %d flops", len(initState), len(flops))
	}
	order := cc.TopoOrder()
	nWords := (nVectors + 63) / 64
	lastMask := ^uint64(0)
	if r := nVectors % 64; r != 0 {
		lastMask = (uint64(1) << uint(r)) - 1
	}
	tr := &FrameTrace{
		Circuit:  c,
		N:        nVectors,
		Cycles:   cycles,
		PI:       make([][]uint64, cycles),
		State:    make([][]uint64, cycles+1),
		PO:       make([][]uint64, cycles),
		order:    order,
		nWords:   nWords,
		lastMask: lastMask,
	}
	for _, g := range c.Gates {
		if !g.Type.IsSource() && len(g.Fanin) > tr.maxFanin {
			tr.maxFanin = len(g.Fanin)
		}
	}

	// Broadcast the reset state into the lane words.
	st := make([]uint64, len(flops)*nWords)
	for fi := range flops {
		if initState != nil && initState[fi] {
			w := st[fi*nWords : (fi+1)*nWords]
			for k := range w {
				w[k] = ^uint64(0)
			}
			w[nWords-1] &= lastMask
		}
	}
	tr.State[0] = st

	vals := make([]uint64, len(c.Gates)*nWords)
	pos := c.Outputs()
	for t := 0; t < cycles; t++ {
		pi := make([]uint64, len(c.Inputs())*nWords)
		for i := range c.Inputs() {
			w := pi[i*nWords : (i+1)*nWords]
			for k := range w {
				w[k] = rng.Uint64()
			}
			w[nWords-1] &= lastMask
		}
		tr.PI[t] = pi

		tr.EvalFrame(vals, t, tr.State[t])

		po := make([]uint64, len(pos)*nWords)
		for p, id := range pos {
			copy(po[p*nWords:(p+1)*nWords], vals[id*nWords:(id+1)*nWords])
		}
		tr.PO[t] = po

		next := make([]uint64, len(flops)*nWords)
		tr.NextState(vals, next)
		tr.State[t+1] = next
	}
	return tr, nil
}

// EvalFrame evaluates cycle t's combinational frame into vals (flat
// gateID*nWords, length NumGates*NWords): primary-input rows come from
// the trace's stored words for that cycle, flop rows from the given
// state (flat flopIndex*nWords), and every combinational gate is
// evaluated in topological order. Passing a state other than
// State[t] — e.g. one with a flop column flipped — re-runs the frame
// under that perturbation against identical inputs, which is exactly
// the fault-propagation primitive the sequential analysis needs.
func (tr *FrameTrace) EvalFrame(vals []uint64, t int, state []uint64) {
	c := tr.Circuit
	nWords := tr.nWords
	pi := tr.PI[t]
	for i, id := range c.Inputs() {
		copy(vals[id*nWords:(id+1)*nWords], pi[i*nWords:(i+1)*nWords])
	}
	for fi, id := range c.DFFs() {
		copy(vals[id*nWords:(id+1)*nWords], state[fi*nWords:(fi+1)*nWords])
	}
	in := make([]uint64, tr.maxFanin)
	for _, id := range tr.order {
		g := c.Gates[id]
		if g.Type.IsSource() {
			continue
		}
		w := vals[id*nWords : (id+1)*nWords]
		fin := in[:len(g.Fanin)]
		for k := 0; k < nWords; k++ {
			for fi, f := range g.Fanin {
				fin[fi] = vals[f*nWords+k]
			}
			w[k] = g.Type.EvalWord(fin)
		}
		w[nWords-1] &= tr.lastMask
	}
}

// NextState extracts the D-pin words of an evaluated frame into dst
// (flat flopIndex*nWords): the value each flop will present at its Q
// output in the next cycle.
func (tr *FrameTrace) NextState(vals, dst []uint64) {
	c := tr.Circuit
	nWords := tr.nWords
	for fi, id := range c.DFFs() {
		d := c.Gates[id].Fanin[0]
		copy(dst[fi*nWords:(fi+1)*nWords], vals[d*nWords:(d+1)*nWords])
	}
}

// EvalFrameChunk is EvalFrame restricted to cw consecutive vector
// words starting at word k0: vals and state are chunk-width arenas
// (flat gateID*cw and flopIndex*cw), while the trace's stored PI words
// are read at their full-width offsets. cmask is the valid-vector mask
// of the chunk's final word (LastMask when the chunk covers the run's
// last word, all ones otherwise). Evaluating per chunk keeps the
// work-arena footprint at cw words per gate regardless of the run
// length — the cache-blocked inner loop of the wide sequential fault
// chase. fanin is caller-provided scratch of at least MaxFanin words
// (hoisted out so the per-frame call allocates nothing).
func (tr *FrameTrace) EvalFrameChunk(vals []uint64, t int, state []uint64, k0, cw int, cmask uint64, fanin []uint64) {
	c := tr.Circuit
	nWords := tr.nWords
	pi := tr.PI[t]
	for i, id := range c.Inputs() {
		copy(vals[id*cw:(id+1)*cw], pi[i*nWords+k0:i*nWords+k0+cw])
	}
	for fi, id := range c.DFFs() {
		copy(vals[id*cw:(id+1)*cw], state[fi*cw:(fi+1)*cw])
	}
	in := fanin[:tr.maxFanin]
	for _, id := range tr.order {
		g := c.Gates[id]
		if g.Type.IsSource() {
			continue
		}
		w := vals[id*cw : (id+1)*cw]
		fin := in[:len(g.Fanin)]
		for k := 0; k < cw; k++ {
			for fi, f := range g.Fanin {
				fin[fi] = vals[f*cw+k]
			}
			w[k] = g.Type.EvalWord(fin)
		}
		w[cw-1] &= cmask
	}
}

// NextStateChunk is NextState over chunk-width arenas (flat rows of cw
// words).
func (tr *FrameTrace) NextStateChunk(vals, dst []uint64, cw int) {
	c := tr.Circuit
	for fi, id := range c.DFFs() {
		d := c.Gates[id].Fanin[0]
		copy(dst[fi*cw:(fi+1)*cw], vals[d*cw:(d+1)*cw])
	}
}
