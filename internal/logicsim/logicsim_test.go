package logicsim

import (
	"math"
	"testing"

	"repro/internal/ckt"
	"repro/internal/stats"
)

// buildC17 constructs the genuine ISCAS-85 c17 netlist.
func buildC17(t testing.TB) *ckt.Circuit {
	t.Helper()
	c := ckt.New("c17")
	for _, n := range []string{"1", "2", "3", "6", "7"} {
		c.MustAddGate(n, ckt.Input)
	}
	add := func(name string, ins ...string) int {
		id := c.MustAddGate(name, ckt.Nand)
		for _, in := range ins {
			src, _ := c.GateByName(in)
			c.MustConnect(src, id)
		}
		return id
	}
	add("10", "1", "3")
	add("11", "3", "6")
	add("16", "2", "11")
	add("19", "11", "7")
	g22 := add("22", "10", "16")
	g23 := add("23", "16", "19")
	c.MarkPO(g22)
	c.MarkPO(g23)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEvaluateC17(t *testing.T) {
	c := buildC17(t)
	// Inputs in order 1,2,3,6,7.
	cases := []struct {
		in       []bool
		o22, o23 bool
	}{
		// All zero: 10=1, 11=1, 16=1, 19=1, 22=NAND(1,1)=0, 23=0.
		{[]bool{false, false, false, false, false}, false, false},
		// All one: 10=0, 11=0, 16=1, 19=1, 22=1, 23=0.
		{[]bool{true, true, true, true, true}, true, false},
		// 1=1,3=1 -> 10=0 -> 22=1 regardless of 16.
		{[]bool{true, false, true, false, false}, true, false},
	}
	for _, tc := range cases {
		val, err := Evaluate(c, tc.in)
		if err != nil {
			t.Fatal(err)
		}
		id22, _ := c.GateByName("22")
		id23, _ := c.GateByName("23")
		if val[id22] != tc.o22 || val[id23] != tc.o23 {
			t.Errorf("Evaluate(%v): 22=%v 23=%v, want %v %v", tc.in, val[id22], val[id23], tc.o22, tc.o23)
		}
	}
}

func TestEvaluateBadInputLen(t *testing.T) {
	c := buildC17(t)
	if _, err := Evaluate(c, []bool{true}); err == nil {
		t.Fatal("wrong input length accepted")
	}
}

func TestAnalyzeStaticProbs(t *testing.T) {
	c := buildC17(t)
	res, err := Analyze(c, 20000, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, pi := range c.Inputs() {
		if math.Abs(res.P1[pi]-0.5) > 0.02 {
			t.Errorf("PI %d static prob = %g, want ~0.5", pi, res.P1[pi])
		}
	}
	// NAND of two independent 0.5 inputs: P(1) = 0.75.
	id10, _ := c.GateByName("10")
	if math.Abs(res.P1[id10]-0.75) > 0.02 {
		t.Errorf("gate 10 static prob = %g, want ~0.75", res.P1[id10])
	}
	// Activity = 2p(1-p).
	if math.Abs(res.Activity[id10]-2*res.P1[id10]*(1-res.P1[id10])) > 1e-12 {
		t.Error("activity formula broken")
	}
}

func TestAnalyzePjjIsOne(t *testing.T) {
	c := buildC17(t)
	res, err := Analyze(c, 1000, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	for k, po := range c.Outputs() {
		if res.Pij[po][k] != 1 {
			t.Errorf("P_jj for PO %d = %g, want 1", po, res.Pij[po][k])
		}
	}
}

// Brute-force check of the path-sensitization definition: for every
// one of the 32 c17 input vectors, gate i is "sensitized to PO j" when
// the boolean DP sens(g) = OR_f (sens(f) AND side-inputs-of-g
// non-controlling) reaches j. P_ij is the fraction of such vectors.
func TestAnalyzePijMatchesBruteForce(t *testing.T) {
	c := buildC17(t)
	res, err := Analyze(c, 50000, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	nPI := len(c.Inputs())
	id10, _ := c.GateByName("10")
	id11, _ := c.GateByName("11")
	id22, _ := c.GateByName("22")
	id23, _ := c.GateByName("23")
	brute := func(gate, po int) float64 {
		count := 0
		total := 1 << uint(nPI)
		for m := 0; m < total; m++ {
			in := make([]bool, nPI)
			for b := range in {
				in[b] = m>>uint(b)&1 == 1
			}
			if pathSensitized(t, c, in, gate, po) {
				count++
			}
		}
		return float64(count) / float64(total)
	}
	for _, tc := range []struct {
		gate, po int
		name     string
	}{
		{id10, id22, "P(10->22)"},
		{id11, id22, "P(11->22)"},
		{id11, id23, "P(11->23)"},
		{id10, id23, "P(10->23)"},
	} {
		want := brute(tc.gate, tc.po)
		col, ok := res.POColumn(tc.po)
		if !ok {
			t.Fatal("PO column missing")
		}
		got := res.Pij[tc.gate][col]
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%s = %g, brute force %g", tc.name, got, want)
		}
	}
	// Gate 10 has no structural path to PO 23.
	col23, _ := res.POColumn(id23)
	if res.Pij[id10][col23] != 0 {
		t.Errorf("P(10->23) = %g, want 0 (no path)", res.Pij[id10][col23])
	}
}

// pathSensitized runs the per-vector boolean DP from gate `from` and
// reports whether sensitization reaches gate `to`.
func pathSensitized(t *testing.T, c *ckt.Circuit, inputs []bool, from, to int) bool {
	t.Helper()
	val, err := Evaluate(c, inputs)
	if err != nil {
		t.Fatal(err)
	}
	sens := make([]bool, len(c.Gates))
	sens[from] = true
	for _, id := range c.MustTopoOrder() {
		g := c.Gates[id]
		if g.Type == ckt.Input || id == from {
			continue
		}
		cv, hasCV := g.Type.ControllingValue()
		for fi, f := range g.Fanin {
			if !sens[f] {
				continue
			}
			ok := true
			if hasCV {
				for oi, of := range g.Fanin {
					if oi != fi && val[of] == cv {
						ok = false
						break
					}
				}
			}
			if ok {
				sens[id] = true
				break
			}
		}
	}
	return sens[to]
}

func TestSideSensitization(t *testing.T) {
	c := buildC17(t)
	res, err := Analyze(c, 20000, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	// Gate 16 = NAND(2, 11); sensitization of the path from 11 through
	// 16 requires input 2 to be non-controlling (=1): S = P1(2) ~ 0.5.
	id11, _ := c.GateByName("11")
	id16, _ := c.GateByName("16")
	s := SideSensitization(c, res, id11, id16)
	if math.Abs(s-0.5) > 0.02 {
		t.Errorf("S(11->16) = %g, want ~0.5", s)
	}
	// XOR gates are always sensitized.
	cx := ckt.New("x")
	a := cx.MustAddGate("a", ckt.Input)
	b := cx.MustAddGate("b", ckt.Input)
	x := cx.MustAddGate("x", ckt.Xor)
	cx.MustConnect(a, x)
	cx.MustConnect(b, x)
	cx.MarkPO(x)
	resx, err := Analyze(cx, 1000, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := SideSensitization(cx, resx, a, x); got != 1 {
		t.Errorf("XOR side sensitization = %g, want 1", got)
	}
}

func TestAnalyzeDefaultVectors(t *testing.T) {
	c := buildC17(t)
	res, err := Analyze(c, 0, stats.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.N != DefaultVectors {
		t.Fatalf("default vectors = %d, want %d", res.N, DefaultVectors)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	c := buildC17(t)
	r1, _ := Analyze(c, 5000, stats.NewRNG(77))
	r2, _ := Analyze(c, 5000, stats.NewRNG(77))
	for id := range r1.P1 {
		if r1.P1[id] != r2.P1[id] {
			t.Fatal("Analyze must be deterministic for a fixed seed")
		}
	}
}

func BenchmarkAnalyzeC17(b *testing.B) {
	c := buildC17(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(c, 10000, stats.NewRNG(1)); err != nil {
			b.Fatal(err)
		}
	}
}
