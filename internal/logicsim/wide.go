package logicsim

// Multi-word bit-parallel simulation lanes. The historical engine
// (AnalyzeCompiled) walks every strike source's fanout cone through
// the pointer-rich netlist once, carrying the full vector run
// (⌈N/64⌉ words) per gate row; on large circuits the per-source
// sensitization arena outgrows the cache and every row streams from
// memory. The wide engine restructures that walk around W-word lanes
// (W ∈ {4, 8}: 256/512 vectors per pass):
//
//   - Strike sources are cone-batched: sources with identical fanout
//     sets necessarily have identical fanout cones (and are mutually
//     unreachable, the circuit being acyclic), so one traversal
//     serves up to laneGroupCap of them (laneGroups, memoized on the
//     compiled handle).
//   - Each group's cone is compiled once per run into a flat edge
//     program: positions instead of gate IDs, fanin edges resolved to
//     (position, side-condition row) pairs, gates outside the cone
//     dropped. The pointer chasing through ckt.Gate happens once per
//     group — not once per chunk.
//   - The program then runs once per W-word chunk of the vector run:
//     OR-AND dataflow in unrolled W-word blocks over a dense
//     position-indexed lane arena, with one liveness byte per
//     position standing in for the historical engine's mark/epoch
//     pruning (a dead chunk skips its loads and stores). The
//     per-chunk state (cone length × W words, member-dense) stays
//     cache-resident no matter how many vectors the run carries, and
//     the side-OK arena is chunk-major so each chunk's walk streams
//     monotonically through one dense block.
//
// The trade: W > 1 pays a per-chunk replay of each cone program, so
// on a machine whose last-level cache holds the full-run arenas
// comfortably, the historical single-pass walk is still somewhat
// faster single-threaded. Wide lanes win when the full-run
// sensitization arena does not fit — very long vector runs, or many
// workers contending for the cache (a W=1 worker drags ⌈N/64⌉ words
// per gate; a wide worker W words per cone position).
//
// Bit-identity: chunk pruning is at least as precise as full-row
// pruning (a row dead over the whole run is dead in every chunk),
// and the OR-AND recurrence maps zero inputs to zero outputs, so
// pruning never changes a counted bit. Population counts of
// identical columns are accumulated as integers across chunks;
// results are therefore bit-identical to AnalyzeCompiled for any
// lane width, chunk count or batch composition. The RNG stream is
// consumed in the historical order (all words of input 0, then input
// 1, ...), so the simulated vector set is identical too.

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/ckt"
	"repro/internal/engine"
	"repro/internal/par"
	"repro/internal/stats"
)

// laneGroupCap bounds how many cone-sharing sources one batched
// traversal carries.
const laneGroupCap = 8

// NormalizeLaneWords snaps a requested lane width to a supported one
// (1, 4 or 8 — engine.Params applies the same rule).
func NormalizeLaneWords(w int) int {
	switch {
	case w >= 8:
		return 8
	case w >= 4:
		return 4
	default:
		return 1
	}
}

// AnalyzeCompiledLanes is AnalyzeCompiled at an explicit lane width:
// laneWords 64-bit words (64·laneWords vectors) per pass. Results are
// bit-identical to AnalyzeCompiled for every supported width; width 1
// is the historical engine itself.
func AnalyzeCompiledLanes(cc *engine.CompiledCircuit, nVectors int, rng *stats.RNG, workers, laneWords int) (*Result, error) {
	W := NormalizeLaneWords(laneWords)
	if W == 1 {
		return AnalyzeCompiled(cc, nVectors, rng, workers)
	}
	return analyzeLanes(cc, nVectors, rng, workers, W)
}

// SensitizationLanes is Sensitization at an explicit lane width,
// memoized on the handle under a (vectors, seed, laneWords) key. The
// statistics are bit-identical across widths; the key still carries
// the width so a mixed-width workload never blocks one width's callers
// on another width's in-flight build.
func SensitizationLanes(cc *engine.CompiledCircuit, vectors int, seed uint64, laneWords int) (*Result, error) {
	if vectors <= 0 {
		vectors = DefaultVectors
	}
	lanes := NormalizeLaneWords(laneWords)
	v, err := cc.Memo(sensKey{vectors, seed, lanes}, func() (any, error) {
		return AnalyzeCompiledLanes(cc, vectors, stats.NewRNG(seed), 0, lanes)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Result), nil
}

// laneGroupsKey memoizes the cone-batched source grouping on the
// compiled handle.
type laneGroupsKey struct{}

// laneGroups is the cone-batched source structure: sources partitioned
// into groups with identical fanout sets (CSR over members, each group
// at most laneGroupCap sources, members in topological order), plus
// one precomputed fanout cone per group. A nil cone arena means the
// cone budget was exceeded; the program builder then scans the
// topological suffix from the group's first member instead.
type laneGroups struct {
	memOff  []int32
	members []int32
	coneOff []int
	cones   []int32
	// start[g] is the topological position of group g's first member;
	// the suffix fallback scans order[start[g]+1:].
	start []int32
}

// MemoWeight reports the grouping's retained size in cache-weight
// units (engine.MemoWeigher).
func (lg *laneGroups) MemoWeight() int64 {
	return int64(len(lg.members)+len(lg.cones)+len(lg.start)) * 4 / 128
}

func (lg *laneGroups) groups() int             { return len(lg.memOff) - 1 }
func (lg *laneGroups) membersOf(g int) []int32 { return lg.members[lg.memOff[g]:lg.memOff[g+1]] }
func (lg *laneGroups) coneOf(g int) []int32 {
	if lg.cones == nil {
		return nil
	}
	return lg.cones[lg.coneOff[g]:lg.coneOff[g+1]]
}

// laneGroupsFor returns the memoized cone-batched grouping.
func laneGroupsFor(cc *engine.CompiledCircuit, order, posIdx []int, workers int) *laneGroups {
	v, _ := cc.Memo(laneGroupsKey{}, func() (any, error) {
		return buildLaneGroups(cc.Circuit(), order, posIdx, workers), nil
	})
	return v.(*laneGroups)
}

// buildLaneGroups partitions the strike sources (non-input gates, in
// topological order) by fanout-set signature and sweeps one cone per
// group. Deterministic in the netlist regardless of worker count.
func buildLaneGroups(c *ckt.Circuit, order, posIdx []int, workers int) *laneGroups {
	type group struct{ members []int32 }
	bySig := make(map[string]int)
	var groups []*group
	var sigBuf []int32
	var keyBuf []byte
	for _, id := range order {
		if c.Gates[id].Type == ckt.Input {
			continue
		}
		sigBuf = sigBuf[:0]
		for _, f := range c.Gates[id].Fanout {
			sigBuf = append(sigBuf, int32(f))
		}
		sort.Slice(sigBuf, func(i, j int) bool { return sigBuf[i] < sigBuf[j] })
		keyBuf = keyBuf[:0]
		for _, f := range sigBuf {
			keyBuf = append(keyBuf, byte(f), byte(f>>8), byte(f>>16), byte(f>>24))
		}
		k := string(keyBuf)
		gi, ok := bySig[k]
		if !ok || len(groups[gi].members) >= laneGroupCap {
			gi = len(groups)
			groups = append(groups, &group{})
			bySig[k] = gi
		}
		groups[gi].members = append(groups[gi].members, int32(id))
	}

	lg := &laneGroups{
		memOff: make([]int32, len(groups)+1),
		start:  make([]int32, len(groups)),
	}
	for gi, g := range groups {
		lg.memOff[gi+1] = lg.memOff[gi] + int32(len(g.members))
		lg.members = append(lg.members, g.members...)
		lg.start[gi] = int32(posIdx[g.members[0]])
	}

	// Cone sweep per group: members share one fanout set, so the
	// reachability from the first member is the whole group's cone.
	n := len(groups)
	counts := make([]int, n)
	nw := par.Workers(workers)
	marks := make([][]int, nw)
	epochs := make([]int, nw)
	for i := range marks {
		marks[i] = make([]int, len(c.Gates))
		for j := range marks[i] {
			marks[i][j] = -1
		}
	}
	sweep := func(worker, gi int, emit []int32) int {
		mark := marks[worker]
		epochs[worker]++
		epoch := epochs[worker]
		fid := int(groups[gi].members[0])
		mark[fid] = epoch
		cnt := 0
		for oi := int(lg.start[gi]) + 1; oi < len(order); oi++ {
			id := order[oi]
			g := c.Gates[id]
			if g.Type == ckt.Input {
				continue
			}
			for _, f := range g.Fanin {
				if mark[f] == epoch {
					mark[id] = epoch
					if emit != nil {
						emit[cnt] = int32(id)
					}
					cnt++
					break
				}
			}
		}
		return cnt
	}
	par.Each(n, nw, 0, func(worker, lo, hi int) {
		for gi := lo; gi < hi; gi++ {
			counts[gi] = sweep(worker, gi, nil)
		}
	})
	total := 0
	for _, cn := range counts {
		total += cn
	}
	if total > maxConeEntries {
		return lg // nil cone arena: suffix-scan fallback
	}
	lg.coneOff = make([]int, n+1)
	for gi, cn := range counts {
		lg.coneOff[gi+1] = lg.coneOff[gi] + cn
	}
	lg.cones = make([]int32, total)
	par.Each(n, nw, 0, func(worker, lo, hi int) {
		for gi := lo; gi < hi; gi++ {
			sweep(worker, gi, lg.cones[lg.coneOff[gi]:lg.coneOff[gi+1]])
		}
	})
	return lg
}

// laneScratch is one DP worker's reusable state: the compiled cone
// program, its primary-output extraction list, the chunk-local
// sensitization lanes, and the gate→position map used during program
// builds (epoch-retired, never cleared).
type laneScratch struct {
	prog  []int32  // per gate: nEdges, then nEdges × (srcPos, edgeIdx)
	poEnt []int32  // pairs: (position, PO column)
	cone  []int32  // suffix-fallback cone buffer
	sens  []uint64 // (members + coneLen) × members × W words, member-dense
	live  []uint8  // per position: member bitmask of nonzero lanes
	pos   []int32  // gate -> program position, valid when mark == epoch
	mark  []int32
	epoch int32
}

// analyzeLanes is the cone-batched, chunk-blocked engine body. W is
// the lane width in 64-bit words (4 or 8).
func analyzeLanes(cc *engine.CompiledCircuit, nVectors int, rng *stats.RNG, workers, W int) (*Result, error) {
	c := cc.Circuit()
	if nVectors <= 0 {
		nVectors = DefaultVectors
	}
	if c.Sequential() {
		return nil, fmt.Errorf("logicsim: circuit %q has flip-flops; analyze its combinational frame (seq.BuildFrame) or use SimulateFrames", c.Name)
	}
	order := cc.TopoOrder()
	nGates := len(c.Gates)
	nWordsTot := (nVectors + 63) / 64
	nChunks := (nWordsTot + W - 1) / W
	// Rows are padded to whole chunks so every chunk slice is in
	// bounds; padding words stay zero and the masked seeds keep them
	// zero through the whole dataflow.
	nWordsPad := nChunks * W
	lastMask := ^uint64(0)
	if r := nVectors % 64; r != 0 {
		lastMask = (uint64(1) << uint(r)) - 1
	}

	// Base simulation over one flat padded arena, indexed
	// gateID*nWordsPad. The PI words consume the RNG stream in
	// Inputs() order, so the vector set matches the historical engine
	// exactly.
	base := make([]uint64, nGates*nWordsPad)
	for _, id := range c.Inputs() {
		w := base[id*nWordsPad : id*nWordsPad+nWordsTot]
		for k := range w {
			w[k] = rng.Uint64()
		}
		w[nWordsTot-1] &= lastMask
	}
	maxFanin := 0
	for _, g := range c.Gates {
		if len(g.Fanin) > maxFanin {
			maxFanin = len(g.Fanin)
		}
	}
	fin := make([]uint64, maxFanin)
	for _, id := range order {
		g := c.Gates[id]
		if g.Type == ckt.Input {
			continue
		}
		w := base[id*nWordsPad : id*nWordsPad+nWordsTot]
		fi := fin[:len(g.Fanin)]
		for k := 0; k < nWordsTot; k++ {
			for i, f := range g.Fanin {
				fi[i] = base[f*nWordsPad+k]
			}
			w[k] = g.Type.EvalWord(fi)
		}
		w[nWordsTot-1] &= lastMask
	}

	// Side-input conditions per fanin edge. The arena is chunk-major —
	// sideOK[chunk*nEdges*W + edge*W + w] — so each chunk's program
	// walk reads monotonically through one dense block (programs list
	// edges in ascending order), which keeps the hardware prefetcher
	// ahead of the OR-AND loads.
	edgeOff := cc.FaninEdgeOffsets()
	nEdges := edgeOff[nGates]
	sideOK := make([]uint64, nEdges*nWordsPad)
	par.ForChunks(nGates, workers, 0, func(lo, hi int) {
		row := make([]uint64, nWordsPad)
		for id := lo; id < hi; id++ {
			g := c.Gates[id]
			if g.Type == ckt.Input {
				continue
			}
			cv, hasCV := g.Type.ControllingValue()
			for fi := range g.Fanin {
				w := row[:nWordsTot]
				for k := range w {
					ok := ^uint64(0)
					if hasCV {
						for oi, f := range g.Fanin {
							if oi == fi {
								continue
							}
							if cv {
								ok &= ^base[f*nWordsPad+k]
							} else {
								ok &= base[f*nWordsPad+k]
							}
						}
					}
					w[k] = ok
				}
				w[nWordsTot-1] &= lastMask
				ei := edgeOff[id] + fi
				for chunk := 0; chunk < nChunks; chunk++ {
					copy(sideOK[chunk*nEdges*W+ei*W:chunk*nEdges*W+(ei+1)*W], row[chunk*W:(chunk+1)*W])
				}
			}
		}
	})

	// Valid-vector masks per chunk: all ones inside the run, the
	// historical lastMask at the boundary word, zero in padding.
	masks := make([]uint64, nChunks*W)
	for k := 0; k < nWordsTot-1; k++ {
		masks[k] = ^uint64(0)
	}
	masks[nWordsTot-1] = lastMask

	posIdx := make([]int, nGates)
	for i, id := range order {
		posIdx[id] = i
	}
	poColOf := make([]int32, nGates)
	pos := c.Outputs()
	nPOs := len(pos)
	for i := range poColOf {
		poColOf[i] = -1
	}
	for k, id := range pos {
		poColOf[id] = int32(k)
	}

	lg := laneGroupsFor(cc, order, posIdx, workers)
	nGroups := lg.groups()

	// Integer accumulators: base-value population counts (P1) and
	// per-source sensitized-vector counts (Pij, one row per source —
	// groups are write-disjoint).
	onesCnt := make([]int64, nGates)
	for id := 0; id < nGates; id++ {
		ones := 0
		for _, w := range base[id*nWordsPad : id*nWordsPad+nWordsTot] {
			ones += bits.OnesCount64(w)
		}
		onesCnt[id] = int64(ones)
	}
	cntPij := make([]int64, nGates*nPOs)

	nw := par.Workers(workers)
	if nw > nGroups {
		nw = nGroups
	}
	// Each worker's sensitization buffer peaks at coneLen × members
	// lanes; bound the combined scratch like the historical engine.
	if per := nGates * laneGroupCap * W * 8; per > 0 {
		if maxW := maxScratchBytes / per; nw > maxW {
			nw = maxW
		}
		if nw < 1 {
			nw = 1
		}
	}
	scratches := make([]*laneScratch, nw)
	for i := range scratches {
		scratches[i] = &laneScratch{
			pos:  make([]int32, nGates),
			mark: make([]int32, nGates),
		}
		for j := range scratches[i].mark {
			scratches[i].mark[j] = -1
		}
	}

	par.Each(nGroups, nw, 1, func(worker, lo, hi int) {
		sc := scratches[worker]
		for gi := lo; gi < hi; gi++ {
			members := lg.membersOf(gi)
			m := len(members)
			cone := lg.coneOf(gi)
			if lg.cones == nil {
				cone = sc.suffixCone(c, order, int(lg.start[gi]), members)
			}
			sc.buildProgram(c, edgeOff, poColOf, members, cone)

			nPos := m + len(cone)
			need := nPos * m * W
			if cap(sc.sens) < need {
				sc.sens = make([]uint64, need)
			}
			sens := sc.sens[:need]
			if cap(sc.live) < nPos {
				sc.live = make([]uint8, nPos)
			}
			live := sc.live[:nPos]

			for chunk := 0; chunk < nChunks; chunk++ {
				// Seed the member block: member b's own row carries
				// the chunk mask, its rows for other members stay
				// zero (members are mutually unreachable).
				for j := 0; j < m*m*W; j++ {
					sens[j] = 0
				}
				k0 := chunk * W
				for b := 0; b < m; b++ {
					copy(sens[(b*m+b)*W:(b*m+b+1)*W], masks[k0:k0+W])
					live[b] = 1 << b
				}
				obase := chunk * nEdges * W
				if m == 1 {
					if W == 8 {
						runProgram1x8(sens, live, sc.prog, sideOK, obase)
					} else {
						runProgram1x4(sens, live, sc.prog, sideOK, obase)
					}
				} else {
					runProgramM(sens, live, sc.prog, sideOK, obase, m, W)
				}
				for e := 0; e+1 < len(sc.poEnt); e += 2 {
					p, col := int(sc.poEnt[e]), int(sc.poEnt[e+1])
					if live[p] == 0 {
						continue
					}
					for b, fid := range members {
						if live[p]&(1<<b) == 0 {
							continue
						}
						row := sens[(p*m+b)*W : (p*m+b+1)*W]
						cnt := 0
						for _, w := range row {
							cnt += bits.OnesCount64(w)
						}
						cntPij[int(fid)*nPOs+col] += int64(cnt)
					}
				}
			}
		}
	})

	// Fold the integer counts into the historical Result shape.
	res := &Result{
		N:        nVectors,
		P1:       make([]float64, nGates),
		Activity: make([]float64, nGates),
		Pij:      make([][]float64, nGates),
		poCol:    make(map[int]int),
	}
	for k, id := range pos {
		res.poCol[id] = k
	}
	pijFlat := make([]float64, nGates*nPOs)
	for id := 0; id < nGates; id++ {
		p := float64(onesCnt[id]) / float64(nVectors)
		res.P1[id] = p
		res.Activity[id] = 2 * p * (1 - p)
		res.Pij[id] = pijFlat[id*nPOs : (id+1)*nPOs]
	}
	for _, id := range order {
		if c.Gates[id].Type == ckt.Input {
			continue
		}
		out := res.Pij[id]
		row := cntPij[id*nPOs : (id+1)*nPOs]
		for k2, poID := range pos {
			if poID == id {
				out[k2] = 1 // paper: P_jj = 1 for a PO gate itself
				continue
			}
			out[k2] = float64(row[k2]) / float64(nVectors)
		}
	}
	return res, nil
}

// suffixCone rebuilds a group's cone by scanning the topological
// suffix (the fallback when the memoized cone arena exceeded its
// budget), reusing the worker's mark array and cone buffer.
func (sc *laneScratch) suffixCone(c *ckt.Circuit, order []int, start int, members []int32) []int32 {
	sc.epoch++
	for _, fid := range members {
		sc.mark[fid] = sc.epoch
	}
	sc.cone = sc.cone[:0]
	for oi := start + 1; oi < len(order); oi++ {
		id := order[oi]
		g := c.Gates[id]
		if g.Type == ckt.Input {
			continue
		}
		for _, f := range g.Fanin {
			if sc.mark[f] == sc.epoch {
				sc.mark[id] = sc.epoch
				sc.cone = append(sc.cone, int32(id))
				break
			}
		}
	}
	return sc.cone
}

// buildProgram compiles a group's cone into the flat edge program: one
// record per cone gate (edge count, then (source position, side-OK
// row) per in-cone fanin edge), positions 0..m-1 being the members and
// m+i cone gate i. The pointer chasing through the netlist happens
// here, once per group; the per-chunk walk only streams the program.
func (sc *laneScratch) buildProgram(c *ckt.Circuit, edgeOff []int, poColOf []int32, members []int32, cone []int32) {
	sc.epoch++
	m := len(members)
	for b, fid := range members {
		sc.mark[fid] = sc.epoch
		sc.pos[fid] = int32(b)
	}
	sc.prog = sc.prog[:0]
	sc.poEnt = sc.poEnt[:0]
	p := int32(m)
	for _, id32 := range cone {
		id := int(id32)
		g := c.Gates[id]
		sc.prog = append(sc.prog, 0)
		cntAt := len(sc.prog) - 1
		nE := int32(0)
		for fi, f := range g.Fanin {
			if sc.mark[f] != sc.epoch {
				continue
			}
			sc.prog = append(sc.prog, sc.pos[f], int32(edgeOff[id]+fi))
			nE++
		}
		sc.prog[cntAt] = nE
		sc.mark[id] = sc.epoch
		sc.pos[id] = p
		if col := poColOf[id]; col >= 0 {
			sc.poEnt = append(sc.poEnt, p, col)
		}
		p++
	}
}

// runProgram1x8 executes a singleton group's program for one chunk at
// W=8: OR-AND dataflow, manually unrolled so the eight accumulator
// words live in registers. Every position's liveness byte is written
// before any later position reads it; edges from dead positions skip
// their side-OK loads and dead positions skip their stores — the
// chunk-local equivalent of the historical engine's dead-row pruning.
func runProgram1x8(sens []uint64, live []uint8, prog []int32, sideOK []uint64, obase int) {
	p := 1 // position 0 is the member seed
	for i := 0; i < len(prog); {
		nE := int(prog[i])
		i++
		var v0, v1, v2, v3, v4, v5, v6, v7 uint64
		for e := 0; e < nE; e++ {
			sp := int(prog[i])
			ob := obase + int(prog[i+1])*8
			i += 2
			if live[sp] == 0 {
				continue
			}
			s := sens[sp*8 : sp*8+8 : sp*8+8]
			ok := sideOK[ob : ob+8 : ob+8]
			v0 |= s[0] & ok[0]
			v1 |= s[1] & ok[1]
			v2 |= s[2] & ok[2]
			v3 |= s[3] & ok[3]
			v4 |= s[4] & ok[4]
			v5 |= s[5] & ok[5]
			v6 |= s[6] & ok[6]
			v7 |= s[7] & ok[7]
		}
		if v0|v1|v2|v3|v4|v5|v6|v7 == 0 {
			live[p] = 0
		} else {
			live[p] = 1
			d := sens[p*8 : p*8+8 : p*8+8]
			d[0], d[1], d[2], d[3] = v0, v1, v2, v3
			d[4], d[5], d[6], d[7] = v4, v5, v6, v7
		}
		p++
	}
}

// runProgram1x4 is runProgram1x8 at W=4.
func runProgram1x4(sens []uint64, live []uint8, prog []int32, sideOK []uint64, obase int) {
	p := 1
	for i := 0; i < len(prog); {
		nE := int(prog[i])
		i++
		var v0, v1, v2, v3 uint64
		for e := 0; e < nE; e++ {
			sp := int(prog[i])
			ob := obase + int(prog[i+1])*4
			i += 2
			if live[sp] == 0 {
				continue
			}
			s := sens[sp*4 : sp*4+4 : sp*4+4]
			ok := sideOK[ob : ob+4 : ob+4]
			v0 |= s[0] & ok[0]
			v1 |= s[1] & ok[1]
			v2 |= s[2] & ok[2]
			v3 |= s[3] & ok[3]
		}
		if v0|v1|v2|v3 == 0 {
			live[p] = 0
		} else {
			live[p] = 1
			d := sens[p*4 : p*4+4 : p*4+4]
			d[0], d[1], d[2], d[3] = v0, v1, v2, v3
		}
		p++
	}
}

// runProgramM executes a batched group's program for one chunk: each
// edge's side-condition lane is applied to every live member's source
// row before moving on, so the batch shares one pass over the program
// and the side-OK rows. Lanes are member-dense: position p, member b
// lives at word offset (p*m+b)*W; liveness is a per-position member
// bitmask.
func runProgramM(sens []uint64, live []uint8, prog []int32, sideOK []uint64, obase, m, W int) {
	stride := m * W
	p := m
	for i := 0; i < len(prog); {
		nE := int(prog[i])
		i++
		row := sens[p*stride : (p+1)*stride]
		for j := range row {
			row[j] = 0
		}
		for e := 0; e < nE; e++ {
			sp := int(prog[i])
			ob := obase + int(prog[i+1])*W
			i += 2
			um := live[sp]
			if um == 0 {
				continue
			}
			src := sens[sp*stride : (sp+1)*stride : (sp+1)*stride]
			ok := sideOK[ob : ob+W : ob+W]
			for b := 0; b < m; b++ {
				if um&(1<<b) == 0 {
					continue
				}
				for w := 0; w < W; w++ {
					row[b*W+w] |= src[b*W+w] & ok[w]
				}
			}
		}
		lm := uint8(0)
		for b := 0; b < m; b++ {
			var any uint64
			for w := 0; w < W; w++ {
				any |= row[b*W+w]
			}
			if any != 0 {
				lm |= 1 << b
			}
		}
		live[p] = lm
		p++
	}
}
