package logicsim

import (
	"fmt"
	"testing"

	"repro/internal/ckt"
	"repro/internal/gen"
	"repro/internal/stats"
)

// unroll expands a sequential circuit into a purely combinational one
// covering K cycles: gate g at cycle t becomes "g@t", a primary input
// becomes a fresh input per cycle, and a reference to flop f's Q at
// cycle t resolves to f's D driver at cycle t-1 (at t == 0, to a
// dedicated "<f>@init" input). This is the classical time-frame
// expansion; evaluating it one vector at a time is an independent
// reference for SimulateFrames' word-level state carrying.
func unroll(t *testing.T, c *ckt.Circuit, K int) *ckt.Circuit {
	t.Helper()
	u := ckt.New(c.Name + "-unrolled")
	var nodeName func(id, cycle int) string
	nodeName = func(id, cycle int) string {
		g := c.Gates[id]
		switch g.Type {
		case ckt.Input:
			return fmt.Sprintf("%s@%d", g.Name, cycle)
		case ckt.DFF:
			if cycle == 0 {
				return g.Name + "@init"
			}
			return nodeName(g.Fanin[0], cycle-1)
		default:
			return fmt.Sprintf("%s@%d", g.Name, cycle)
		}
	}
	for _, id := range c.DFFs() {
		u.MustAddGate(c.Gates[id].Name+"@init", ckt.Input)
	}
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < K; cycle++ {
		for _, id := range c.Inputs() {
			u.MustAddGate(nodeName(id, cycle), ckt.Input)
		}
		for _, id := range order {
			g := c.Gates[id]
			if g.Type.IsSource() {
				continue
			}
			nid := u.MustAddGate(nodeName(id, cycle), g.Type)
			for _, f := range g.Fanin {
				src, ok := u.GateByName(nodeName(f, cycle))
				if !ok {
					t.Fatalf("unroll: %s missing fanin %s", nodeName(id, cycle), nodeName(f, cycle))
				}
				u.MustConnect(src, nid)
			}
		}
		for _, id := range c.Outputs() {
			poID, ok := u.GateByName(nodeName(id, cycle))
			if !ok {
				t.Fatalf("unroll: missing PO node %s", nodeName(id, cycle))
			}
			u.MarkPO(poID)
		}
	}
	if err := u.Validate(); err != nil {
		t.Fatalf("unrolled circuit invalid: %v", err)
	}
	return u
}

// TestSimulateFramesMatchesUnrolledS27 is the golden test for frame
// simulation: K frames of s27 must be bit-identical to per-vector
// boolean evaluation of the hand-unrolled combinational expansion.
func TestSimulateFramesMatchesUnrolledS27(t *testing.T) {
	c := gen.S27()
	const K = 5
	const nVec = 130 // exercises a partial last word
	const seed = 42

	tr, err := SimulateFrames(c, K, nVec, stats.NewRNG(seed), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Regenerate the PI stream independently: SimulateFrames consumes
	// rng cycle by cycle, input by input, word by word.
	rng := stats.NewRNG(seed)
	nW := (nVec + 63) / 64
	nPIs := len(c.Inputs())
	piWords := make([][]uint64, K)
	for cyc := 0; cyc < K; cyc++ {
		w := make([]uint64, nPIs*nW)
		for i := 0; i < nPIs; i++ {
			for k := 0; k < nW; k++ {
				w[i*nW+k] = rng.Uint64()
			}
		}
		piWords[cyc] = w
	}
	bit := func(words []uint64, col, v int) bool {
		return words[col*nW+v/64]>>(uint(v)%64)&1 == 1
	}

	u := unroll(t, c, K)
	uInputs := u.Inputs()
	inVals := make([]bool, len(uInputs))
	piIdx := make(map[string]int, nPIs)
	for i, id := range c.Inputs() {
		piIdx[c.Gates[id].Name] = i
	}

	for v := 0; v < nVec; v++ {
		for i, id := range uInputs {
			name := u.Gates[id].Name
			var val bool
			var cyc, pi int
			if n, _ := fmt.Sscanf(name, "G%d@%d", &pi, &cyc); n == 2 {
				val = bit(piWords[cyc], piIdx[fmt.Sprintf("G%d", pi)], v)
			} else {
				val = false // "<f>@init": all-zero reset
			}
			inVals[i] = val
		}
		got, err := Evaluate(u, inVals)
		if err != nil {
			t.Fatal(err)
		}
		for cyc := 0; cyc < K; cyc++ {
			for p, poID := range c.Outputs() {
				uid, _ := u.GateByName(fmt.Sprintf("%s@%d", c.Gates[poID].Name, cyc))
				want := got[uid]
				have := bit(tr.PO[cyc], p, v)
				if want != have {
					t.Fatalf("cycle %d PO %s vector %d: frames=%v unrolled=%v",
						cyc, c.Gates[poID].Name, v, have, want)
				}
			}
			// State entering cycle cyc+1 must equal the D-driver value
			// at cycle cyc.
			for fi, ffID := range c.DFFs() {
				d := c.Gates[ffID].Fanin[0]
				uid, ok := u.GateByName(fmt.Sprintf("%s@%d", c.Gates[d].Name, cyc))
				if !ok {
					t.Fatalf("unroll: missing D node %s@%d", c.Gates[d].Name, cyc)
				}
				want := got[uid]
				have := bit(tr.State[cyc+1], fi, v)
				if want != have {
					t.Fatalf("state after cycle %d flop %s vector %d: frames=%v unrolled=%v",
						cyc, c.Gates[ffID].Name, v, have, want)
				}
			}
		}
	}
}

func TestSimulateFramesInitState(t *testing.T) {
	c := gen.S27()
	init := []bool{true, false, true}
	tr, err := SimulateFrames(c, 2, 70, stats.NewRNG(1), init)
	if err != nil {
		t.Fatal(err)
	}
	nW := tr.NWords()
	for fi, want := range init {
		for v := 0; v < 70; v++ {
			got := tr.State[0][fi*nW+v/64]>>(uint(v)%64)&1 == 1
			if got != want {
				t.Fatalf("flop %d lane %d initial state = %v, want %v", fi, v, got, want)
			}
		}
	}
	// Padding lanes beyond N must stay zero (masked).
	if tr.State[0][nW-1]>>uint(70%64) != 0 {
		t.Fatal("initial state leaks into masked lanes")
	}
	if _, err := SimulateFrames(c, 2, 70, stats.NewRNG(1), []bool{true}); err == nil {
		t.Fatal("wrong-length initState accepted")
	}
	if _, err := SimulateFrames(c, 0, 70, stats.NewRNG(1), nil); err == nil {
		t.Fatal("cycles=0 accepted")
	}
}

func TestSimulateFramesDeterministic(t *testing.T) {
	c := gen.S27()
	a, err := SimulateFrames(c, 4, 256, stats.NewRNG(7), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateFrames(c, 4, 256, stats.NewRNG(7), nil)
	if err != nil {
		t.Fatal(err)
	}
	for cyc := 0; cyc < 4; cyc++ {
		for i := range a.PO[cyc] {
			if a.PO[cyc][i] != b.PO[cyc][i] {
				t.Fatalf("PO words differ at cycle %d", cyc)
			}
		}
	}
}

func TestAnalyzeRejectsSequential(t *testing.T) {
	c := gen.S27()
	if _, err := Analyze(c, 100, stats.NewRNG(1)); err == nil {
		t.Fatal("Analyze accepted a sequential circuit")
	}
	if _, err := Evaluate(c, make([]bool, len(c.Inputs()))); err == nil {
		t.Fatal("Evaluate accepted a sequential circuit")
	}
}
