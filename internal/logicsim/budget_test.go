package logicsim

import (
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/stats"
)

// requireSameResult asserts two analyses are bit-identical in every
// statistic (floats compared exactly, not approximately).
func requireSameResult(t *testing.T, want, got *Result, label string) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("%s: N = %d, want %d", label, got.N, want.N)
	}
	if !reflect.DeepEqual(want.P1, got.P1) {
		t.Fatalf("%s: P1 differs", label)
	}
	if !reflect.DeepEqual(want.Activity, got.Activity) {
		t.Fatalf("%s: Activity differs", label)
	}
	if !reflect.DeepEqual(want.Pij, got.Pij) {
		t.Fatalf("%s: Pij differs", label)
	}
}

// TestAnalyzeBudgetBitIdentity proves the chunked analysis is
// bit-identical to the unbounded run at every budget, including
// budgets small enough to force one-word chunks and worker shedding,
// and with a vector count that exercises the final-chunk mask.
func TestAnalyzeBudgetBitIdentity(t *testing.T) {
	for _, name := range []string{"c432", "c880"} {
		c, err := gen.ISCAS85(name)
		if err != nil {
			t.Fatal(err)
		}
		cc := engine.MustCompile(c)
		// 1000 vectors → 16 words with a 40-bit final mask.
		want, err := AnalyzeCompiledBudget(cc, 1000, stats.NewRNG(11), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		nGates := len(c.Gates)
		nEdges := cc.FaninEdgeOffsets()[nGates]
		perWord := int64(nGates+nEdges+nGates) * 8
		for _, budget := range []int64{1, perWord * 3, perWord * 100} {
			for _, workers := range []int{1, 3} {
				got, err := AnalyzeCompiledBudget(cc, 1000, stats.NewRNG(11), workers, budget)
				if err != nil {
					t.Fatal(err)
				}
				requireSameResult(t, want, got, name)
			}
		}
		// The default entry point must agree too (its 2 GiB budget
		// keeps this workload in a single chunk).
		got, err := AnalyzeCompiled(cc, 1000, stats.NewRNG(11), 0)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, want, got, name+" default budget")
	}
}

// TestAnalyzeBudgetConeFallback combines both degradation modes: the
// cone arena over budget (walk-on-the-fly) and a transient budget
// small enough to chunk the vectors. Results must still be
// bit-identical to the fully resident run.
func TestAnalyzeBudgetConeFallback(t *testing.T) {
	c, err := gen.ISCAS85("c1355")
	if err != nil {
		t.Fatal(err)
	}
	want, err := AnalyzeCompiledBudget(engine.MustCompile(c), 2000, stats.NewRNG(5), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	saved := maxConeEntries
	maxConeEntries = 0
	defer func() { maxConeEntries = saved }()
	// Fresh handle: the cone arena (here nil) is memoized per handle.
	got, err := AnalyzeCompiledBudget(engine.MustCompile(c), 2000, stats.NewRNG(5), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, want, got, "c1355 fallback+chunked")
}
