// Package logicsim performs zero-delay logic simulation of a circuit:
// 64-way bit-parallel random-vector evaluation, static signal
// probabilities, and the sensitization probabilities P_ij ("the
// probability that there is at least one path sensitized from output
// of gate i to primary output j") that ASERTA's logical-masking model
// needs. The paper estimates P_ij with zero-delay simulation of 10,000
// random inputs; this package reproduces that with exact bit-parallel
// fault simulation of each gate's fanout cone.
//
// The analysis is built for throughput: all bit-vector state lives in
// flat arenas indexed by gateID*nWords (no per-gate allocations in the
// hot path), fanout cones are precomputed once in levelized order, and
// the per-source-gate sensitization DP — embarrassingly parallel, as
// each source's cone walk is independent — fans out over a worker
// pool. Results are bit-identical to the serial evaluation order for a
// fixed seed regardless of worker count.
package logicsim

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/ckt"
	"repro/internal/engine"
	"repro/internal/par"
	"repro/internal/stats"
)

// DefaultVectors is the paper's random-vector count for estimating
// sensitization probabilities.
const DefaultVectors = engine.DefaultVectors

// maxConeEntries bounds the memory of the precomputed fanout-cone
// arena (entries are int32 gate IDs). Past the budget the DP falls
// back to scanning the topological suffix per source, which needs no
// arena and produces identical results. (A var so tests can force the
// fallback path.)
var maxConeEntries = 1 << 25

// maxScratchBytes bounds the combined per-worker sensitization
// arenas of the wide-lane engine: on very large circuits the worker
// count is reduced rather than letting parallelism multiply peak
// memory past the budget. (The scalar engine uses the finer-grained
// DefaultSensBudgetBytes chunking policy instead.)
const maxScratchBytes = 1 << 30

// DefaultSensBudgetBytes bounds the transient working set of one
// scalar sensitization analysis: the base-value arena, the per-edge
// side-input arena and every DP worker's scratch arena together. When
// a circuit × vector-count combination would exceed it, the analysis
// processes the vector set in chunks of 64-vector words through
// recycled arenas — results are bit-identical (popcounts are summed
// across chunks), only peak memory and a per-chunk cone re-walk
// change. The default (2 GiB) keeps every ISCAS-class workload in a
// single chunk; serd exposes it as -sens-mem-budget. It does not
// count the returned Result (the Pij matrix is the analysis' output)
// or the memoized cone arena (bounded separately by maxConeEntries).
var DefaultSensBudgetBytes = int64(2) << 30

// minChunkWords is the smallest chunk width worth paying a cone
// re-walk for; below it the policy sheds DP workers first.
const minChunkWords = 8

// Evaluate computes all gate values for one input vector (indexed by
// ckt.Circuit.Inputs order). The result is indexed by gate ID.
func Evaluate(c *ckt.Circuit, inputs []bool) ([]bool, error) {
	if len(inputs) != len(c.Inputs()) {
		return nil, fmt.Errorf("logicsim: %d inputs for %d PIs", len(inputs), len(c.Inputs()))
	}
	if c.Sequential() {
		return nil, fmt.Errorf("logicsim: circuit %q has flip-flops; use SimulateFrames", c.Name)
	}
	val := make([]bool, len(c.Gates))
	for i, id := range c.Inputs() {
		val[id] = inputs[i]
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	in := make([]bool, 0, 8)
	for _, id := range order {
		g := c.Gates[id]
		if g.Type == ckt.Input {
			continue
		}
		in = in[:0]
		for _, f := range g.Fanin {
			in = append(in, val[f])
		}
		val[id] = g.Type.Eval(in)
	}
	return val, nil
}

// Result holds the statistics ASERTA consumes.
type Result struct {
	// N is the number of random vectors simulated.
	N int
	// P1[id] is the static probability of gate id's output being 1.
	P1 []float64
	// Activity[id] is the per-cycle toggle probability 2·p·(1−p)
	// (random consecutive vectors are independent).
	Activity []float64
	// Pij[id][k] is the probability that at least one path from gate
	// id is sensitized to the k-th primary output (k indexes
	// Circuit.Outputs()). For a PO gate itself, P_jj = 1 per the paper.
	// Rows are views into one flat backing array.
	Pij [][]float64

	poCol map[int]int
}

// POColumn returns the Pij column index of a PO gate ID.
func (r *Result) POColumn(poGate int) (int, bool) {
	k, ok := r.poCol[poGate]
	return k, ok
}

// MemoWeight reports the result's retained size in cache-weight units
// (engine.MemoWeigher, ~128 bytes per unit): the flat Pij arena
// dominates, so a serving tier's compiled-circuit cache charges
// memoized sensitization results against its budget instead of
// letting seed-cycling clients retain them for free.
func (r *Result) MemoWeight() int64 {
	bytes := int64(len(r.P1)+len(r.Activity)) * 8
	if len(r.Pij) > 0 {
		bytes += int64(len(r.Pij)) * int64(len(r.Pij[0])) * 8
	}
	return bytes / 128
}

// Analyze runs nVectors random vectors (PI probability 0.5, as in the
// paper) and estimates static probabilities and sensitization
// probabilities for every gate, using one DP worker per available CPU.
func Analyze(c *ckt.Circuit, nVectors int, rng *stats.RNG) (*Result, error) {
	return AnalyzeWorkers(c, nVectors, rng, 0)
}

// AnalyzeWorkers is Analyze with an explicit worker count (<= 0 means
// one per available CPU). Results are bit-identical for any count.
// It compiles the circuit on the fly; callers analyzing one netlist
// repeatedly should compile once and use AnalyzeCompiled (or the
// memoized Sensitization).
func AnalyzeWorkers(c *ckt.Circuit, nVectors int, rng *stats.RNG, workers int) (*Result, error) {
	cc, err := engine.Compile(c)
	if err != nil {
		return nil, err
	}
	return AnalyzeCompiled(cc, nVectors, rng, workers)
}

// sensKey memoizes Sensitization results on the compiled handle. The
// lane width is part of the key even though results are bit-identical
// across widths: a mixed-width workload must never block one width's
// callers on another width's in-flight build, and the key documents
// which engine produced the retained value.
type sensKey struct {
	vectors int
	seed    uint64
	lanes   int
}

// conesKey memoizes the fanout-cone CSR arena on the compiled handle.
type conesKey struct{}

// Sensitization returns the sensitization statistics for the compiled
// circuit at the given vector count and seed, memoized on the handle:
// the 10,000-vector simulation — the dominant cost of a warm analysis —
// runs once per (vectors, seed) pair no matter how many analyses share
// the handle, and concurrent callers coalesce on one run. The result
// is bit-identical to Analyze(cc.Circuit(), vectors,
// stats.NewRNG(seed)) and must be treated as read-only.
func Sensitization(cc *engine.CompiledCircuit, vectors int, seed uint64) (*Result, error) {
	if vectors <= 0 {
		vectors = DefaultVectors
	}
	v, err := cc.Memo(sensKey{vectors, seed, 1}, func() (any, error) {
		return AnalyzeCompiled(cc, vectors, stats.NewRNG(seed), 0)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Result), nil
}

// AnalyzeCompiled is AnalyzeWorkers over a pre-compiled circuit: the
// topological order, fanin-edge offsets and fanout-cone arena come
// from (or are memoized on) the handle instead of being re-derived per
// call. Results are bit-identical to AnalyzeWorkers for any worker
// count. Peak memory is bounded by DefaultSensBudgetBytes; use
// AnalyzeCompiledBudget for an explicit budget.
func AnalyzeCompiled(cc *engine.CompiledCircuit, nVectors int, rng *stats.RNG, workers int) (*Result, error) {
	return AnalyzeCompiledBudget(cc, nVectors, rng, workers, DefaultSensBudgetBytes)
}

// AnalyzeCompiledBudget is AnalyzeCompiled with an explicit transient
// memory budget in bytes (<= 0 means unbounded). The budget covers the
// base-value arena, the per-edge side-input arena and all DP worker
// scratch arenas; when they would exceed it, the vector set is
// processed in chunks of 64-vector words through recycled arenas.
// Because the bit-parallel DP is independent per 64-bit word and the
// per-PO popcounts are integers summed exactly, results are
// bit-identical to the unbounded run for every budget, worker count
// and chunk width — only peak memory and speed change.
func AnalyzeCompiledBudget(cc *engine.CompiledCircuit, nVectors int, rng *stats.RNG, workers int, budgetBytes int64) (*Result, error) {
	c := cc.Circuit()
	if nVectors <= 0 {
		nVectors = DefaultVectors
	}
	if c.Sequential() {
		return nil, fmt.Errorf("logicsim: circuit %q has flip-flops; analyze its combinational frame (seq.BuildFrame) or use SimulateFrames", c.Name)
	}
	order := cc.TopoOrder()
	nGates := len(c.Gates)
	nWords := (nVectors + 63) / 64
	lastMask := ^uint64(0)
	if r := nVectors % 64; r != 0 {
		lastMask = (uint64(1) << uint(r)) - 1
	}
	inputs := c.Inputs()
	edgeOff := cc.FaninEdgeOffsets()
	nEdges := edgeOff[nGates]

	// Pre-draw every primary-input word up front, in Inputs() order:
	// the RNG stream is consumed exactly as the single-chunk
	// implementation consumed it, so the vector set — and therefore
	// every downstream statistic — is independent of the chunking.
	piW := make([]uint64, len(inputs)*nWords)
	for i := range inputs {
		w := piW[i*nWords : (i+1)*nWords]
		for k := range w {
			w[k] = rng.Uint64()
		}
		w[nWords-1] &= lastMask
	}

	// Source gates: every non-input gate, in topological order.
	sources := make([]int, 0, nGates)
	for _, id := range order {
		if c.Gates[id].Type != ckt.Input {
			sources = append(sources, id) // the paper injects at gate outputs only
		}
	}

	// Chunk policy: the recycled arenas cost (nGates+nEdges)*8 bytes
	// per vector word plus nGates*8 per word for each DP worker's
	// scratch. Shed workers first (a narrow chunk re-walks every cone
	// per chunk, which is the more expensive regression), then narrow
	// the chunk to fit.
	nw := par.Workers(workers)
	if nw > len(sources) {
		nw = len(sources)
	}
	if nw < 1 {
		nw = 1
	}
	cw := nWords
	if budgetBytes > 0 {
		perWord := int64(nGates+nEdges) * 8
		perWorkerWord := int64(nGates) * 8
		capFor := func(nw int) int64 {
			if d := perWord + int64(nw)*perWorkerWord; d > 0 {
				return budgetBytes / d
			}
			return int64(nWords)
		}
		for nw > 1 && capFor(nw) < minChunkWords {
			nw--
		}
		if c := capFor(nw); c < int64(cw) {
			cw = int(c)
		}
		if cw < 1 {
			cw = 1
		}
	}

	res := &Result{
		N:        nVectors,
		P1:       make([]float64, nGates),
		Activity: make([]float64, nGates),
		Pij:      make([][]float64, nGates),
		poCol:    make(map[int]int),
	}
	pos := c.Outputs()
	nPOs := len(pos)
	for k, id := range pos {
		res.poCol[id] = k
	}
	pijFlat := make([]float64, nGates*nPOs)
	for id := 0; id < nGates; id++ {
		res.Pij[id] = pijFlat[id*nPOs : (id+1)*nPOs]
	}
	p1cnt := make([]int64, nGates)

	maxFanin := 0
	for _, g := range c.Gates {
		if len(g.Fanin) > maxFanin {
			maxFanin = len(g.Fanin)
		}
	}
	in := make([]uint64, maxFanin)

	// Recycled chunk arenas, indexed gateID*cwk (cwk = current chunk
	// width): base values, per-fanin-edge side-input conditions, and
	// one sensitization arena per DP worker.
	base := make([]uint64, nGates*cw)
	sideOK := make([]uint64, nEdges*cw)
	scratches := make([]*dpScratch, nw)
	for i := range scratches {
		scratches[i] = &dpScratch{
			sens: make([]uint64, nGates*cw),
			mark: make([]int, nGates),
		}
		for j := range scratches[i].mark {
			scratches[i].mark[j] = -1
		}
	}

	cones := conesFor(cc, sources, workers)
	var walkers []*coneWalker
	if cones == nil {
		// Past the cone-arena budget each DP worker walks cones on the
		// fly instead (see coneWalker); the walk is re-done per chunk,
		// trading time for bounded memory.
		lv := cc.Levels()
		maxLv := 0
		for _, l := range lv {
			if l > maxLv {
				maxLv = l
			}
		}
		walkers = make([]*coneWalker, nw)
		for i := range walkers {
			walkers[i] = newConeWalker(nGates, lv, maxLv)
		}
	}

	for w0 := 0; w0 < nWords; w0 += cw {
		w1 := w0 + cw
		if w1 > nWords {
			w1 = nWords
		}
		cwk := w1 - w0
		final := w1 == nWords

		// Base simulation for this chunk's vector words. The PI words
		// are copies of the pre-drawn stream, already masked, and in a
		// non-final chunk every bit of every word is a real vector, so
		// masking is only needed on the final chunk's last word.
		for i, id := range inputs {
			copy(base[id*cwk:(id+1)*cwk], piW[i*nWords+w0:i*nWords+w1])
		}
		for _, id := range order {
			g := c.Gates[id]
			if g.Type == ckt.Input {
				continue
			}
			w := base[id*cwk : (id+1)*cwk]
			fin := in[:len(g.Fanin)]
			for k := 0; k < cwk; k++ {
				for fi, f := range g.Fanin {
					fin[fi] = base[f*cwk+k]
				}
				w[k] = g.Type.EvalWord(fin)
			}
			if final {
				w[cwk-1] &= lastMask
			}
		}
		for id := 0; id < nGates; id++ {
			ones := 0
			for _, w := range base[id*cwk : (id+1)*cwk] {
				ones += bits.OnesCount64(w)
			}
			p1cnt[id] += int64(ones)
		}

		// Bit-parallel path-sensitization analysis. The paper defines
		// P_ij as "the probability that there is at least one path
		// sensitized from output of gate i to primary output j": a
		// path is sensitized under a vector when every side input
		// along it carries a non-controlling value. Per vector this is
		// a boolean DP over the fanout cone:
		//
		//	sens(i)    = 1
		//	sens(g)    = OR over fanins f of sens(f) AND sideOK(g, f)
		//	sideOK(g,f)= all inputs of g other than f non-controlling
		//
		// and P_ij = Pr[sens(j)]. (Flip-based fault simulation would
		// also count multi-path cancellation effects, under which the
		// paper's Lemma 1 does not hold; path sensitization is the
		// paper's model.)
		//
		// sideOK depends only on base values, so it is precomputed per
		// fanin edge into a flat edge arena (gates are independent —
		// the fill is parallel and in place, costing no extra memory
		// per worker).
		par.ForChunks(nGates, workers, 0, func(lo, hi int) {
			for id := lo; id < hi; id++ {
				g := c.Gates[id]
				if g.Type == ckt.Input {
					continue
				}
				cv, hasCV := g.Type.ControllingValue()
				for fi := range g.Fanin {
					w := sideOK[(edgeOff[id]+fi)*cwk : (edgeOff[id]+fi+1)*cwk]
					for k := range w {
						ok := ^uint64(0)
						if hasCV {
							for oi, f := range g.Fanin {
								if oi == fi {
									continue
								}
								if cv {
									// Controlling value 1: others must be 0.
									ok &= ^base[f*cwk+k]
								} else {
									ok &= base[f*cwk+k]
								}
							}
						}
						w[k] = ok
					}
					if final {
						w[cwk-1] &= lastMask
					}
				}
			}
		})

		// Per-source DP over this chunk. Popcounts accumulate into the
		// Pij rows as exact float64 integers (≤ nVectors < 2^53); the
		// division happens once, after the last chunk, so the result
		// equals the whole-run popcount divided once — bit-identical
		// to the single-chunk computation.
		par.Each(len(sources), nw, 1, func(worker, lo, hi int) {
			sc := scratches[worker]
			for si := lo; si < hi; si++ {
				fid := sources[si]
				sc.epoch++
				row := sc.sens[fid*cwk : (fid+1)*cwk]
				for k := range row {
					row[k] = ^uint64(0)
				}
				if final {
					row[cwk-1] &= lastMask
				}
				sc.mark[fid] = sc.epoch
				if cones != nil {
					for _, id := range cones.of(si) {
						dpGate(c.Gates[id], int(id), sc, sideOK, edgeOff, cwk)
					}
				} else {
					for _, id := range walkers[worker].cone(c, fid) {
						dpGate(c.Gates[id], int(id), sc, sideOK, edgeOff, cwk)
					}
				}
				out := res.Pij[fid]
				for k2, poID := range pos {
					if poID == fid {
						continue // P_jj set after the chunk loop
					}
					if sc.mark[poID] != sc.epoch {
						continue
					}
					cnt := 0
					for _, w := range sc.sens[poID*cwk : (poID+1)*cwk] {
						cnt += bits.OnesCount64(w)
					}
					out[k2] += float64(cnt)
				}
			}
		})
	}

	for id := 0; id < nGates; id++ {
		p := float64(p1cnt[id]) / float64(nVectors)
		res.P1[id] = p
		res.Activity[id] = 2 * p * (1 - p)
	}
	nv := float64(nVectors)
	for i := range pijFlat {
		pijFlat[i] /= nv
	}
	for _, fid := range sources {
		if k, ok := res.poCol[fid]; ok {
			// Paper: "For primary output j, Pjj is 1."
			res.Pij[fid][k] = 1
		}
	}
	return res, nil
}

// dpScratch is one DP worker's private state: a sensitization arena
// and an epoch-marked membership array, both reused across sources so
// the inner loop never allocates.
type dpScratch struct {
	sens  []uint64
	mark  []int
	epoch int
}

// dpGate advances the sensitization DP through one gate: OR together
// each marked fanin's sensitization masked by that edge's side-input
// condition, and mark the gate when any vector survives.
func dpGate(g *ckt.Gate, id int, sc *dpScratch, sideOK []uint64, edgeOff []int, nWords int) {
	inCone := false
	for _, f := range g.Fanin {
		if sc.mark[f] == sc.epoch {
			inCone = true
			break
		}
	}
	if !inCone {
		return
	}
	row := sc.sens[id*nWords : (id+1)*nWords]
	any := uint64(0)
	for k := 0; k < nWords; k++ {
		v := uint64(0)
		for fi, f := range g.Fanin {
			if sc.mark[f] == sc.epoch {
				v |= sc.sens[f*nWords+k] & sideOK[(edgeOff[id]+fi)*nWords+k]
			}
		}
		row[k] = v
		any |= v
	}
	if any != 0 {
		sc.mark[id] = sc.epoch
	}
}

// coneBox wraps the memoized cone arena: the arena is legitimately nil
// past the memory budget, and a typed wrapper keeps that distinct from
// a missing memo value.
type coneBox struct{ cs *coneSet }

// MemoWeight reports the cone arena's retained size in cache-weight
// units (engine.MemoWeigher).
func (b coneBox) MemoWeight() int64 {
	if b.cs == nil {
		return 0
	}
	return int64(len(b.cs.gates)) * 4 / 128
}

// conesFor returns the fanout-cone CSR arena for the compiled circuit,
// memoized on the handle — the arena depends only on the netlist, so
// every sensitization run against one handle shares it. The build is
// deterministic in the netlist regardless of the worker count.
func conesFor(cc *engine.CompiledCircuit, sources []int, workers int) *coneSet {
	v, _ := cc.Memo(conesKey{}, func() (any, error) {
		return coneBox{precomputeCones(cc, sources, workers)}, nil
	})
	return v.(coneBox).cs
}

// coneSet is a CSR arena of precomputed fanout cones: cone i holds the
// non-input gates strictly downstream of sources[i], in topological
// (levelized) order.
type coneSet struct {
	off   []int
	gates []int32
}

func (cs *coneSet) of(i int) []int32 { return cs.gates[cs.off[i]:cs.off[i+1]] }

// coneWalker collects one gate's fanout cone by walking fanout edges —
// work proportional to the cone, not to the whole netlist like the old
// topological-suffix sweep, which is the difference between O(cone)
// and O(gates) per source on million-gate circuits. The collected
// gates are counting-sorted by logic level; level order is a valid
// topological order of the cone (every fanin is at a strictly lower
// level), and the DP result per gate depends only on its fanins'
// results, so any topological processing order yields bit-identical
// results. All state is recycled across calls via epoch marking.
type coneWalker struct {
	lv    []int   // logic level per gate (shared, read-only)
	reach []int32 // epoch marks
	epoch int32
	stack []int32
	buf   []int32 // collected cone, discovery order
	out   []int32 // collected cone, level order
	cnt   []int32 // counting-sort buckets, one per level
}

func newConeWalker(nGates int, lv []int, maxLv int) *coneWalker {
	return &coneWalker{lv: lv, reach: make([]int32, nGates), cnt: make([]int32, maxLv+1)}
}

// cone returns the non-input gates strictly downstream of fid in
// level order. The returned slice is valid until the next call.
func (w *coneWalker) cone(c *ckt.Circuit, fid int) []int32 {
	if w.epoch == 1<<31-1 {
		// Epoch wrap: reset marks so stale epochs can never alias.
		for i := range w.reach {
			w.reach[i] = 0
		}
		w.epoch = 0
	}
	w.epoch++
	ep := w.epoch
	stack := append(w.stack[:0], int32(fid))
	buf := w.buf[:0]
	w.reach[fid] = ep
	minLv, maxLv := int(^uint(0)>>1), -1
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.Gates[id].Fanout {
			if w.reach[f] == ep {
				continue
			}
			w.reach[f] = ep
			stack = append(stack, int32(f))
			buf = append(buf, int32(f))
			if l := w.lv[f]; l < minLv {
				minLv = l
			}
			if l := w.lv[f]; l > maxLv {
				maxLv = l
			}
		}
	}
	w.stack, w.buf = stack, buf
	if len(buf) == 0 {
		return buf
	}
	if cap(w.out) < len(buf) {
		w.out = make([]int32, len(buf))
	}
	out := w.out[:len(buf)]
	for _, id := range buf {
		w.cnt[w.lv[id]]++
	}
	sum := int32(0)
	for l := minLv; l <= maxLv; l++ {
		n := w.cnt[l]
		w.cnt[l] = sum
		sum += n
	}
	for _, id := range buf {
		out[w.cnt[w.lv[id]]] = id
		w.cnt[w.lv[id]]++
	}
	for l := minLv; l <= maxLv; l++ {
		w.cnt[l] = 0
	}
	return out
}

// precomputeCones builds the cone arena with a parallel fanout walk
// per source (counting pass, then a fill pass into the shared arena).
// Returns nil when the arena would exceed the memory budget — the
// counting pass aborts as soon as the running total crosses it, so a
// million-gate circuit with huge cones never pays for a full count —
// and callers then fall back to walking cones on the fly.
func precomputeCones(cc *engine.CompiledCircuit, sources []int, workers int) *coneSet {
	c := cc.Circuit()
	n := len(sources)
	if n == 0 {
		return &coneSet{off: make([]int, 1)}
	}
	lv := cc.Levels()
	maxLv := 0
	for _, l := range lv {
		if l > maxLv {
			maxLv = l
		}
	}
	nw := par.Workers(workers)
	walkers := make([]*coneWalker, nw)
	for i := range walkers {
		walkers[i] = newConeWalker(len(c.Gates), lv, maxLv)
	}
	counts := make([]int, n)
	var total atomic.Int64
	var over atomic.Bool
	par.Each(n, nw, 0, func(worker, lo, hi int) {
		w := walkers[worker]
		for si := lo; si < hi; si++ {
			if over.Load() {
				return
			}
			cn := len(w.cone(c, sources[si]))
			counts[si] = cn
			if total.Add(int64(cn)) > int64(maxConeEntries) {
				over.Store(true)
				return
			}
		}
	})
	if over.Load() {
		return nil
	}
	cs := &coneSet{off: make([]int, n+1), gates: make([]int32, total.Load())}
	for i, cn := range counts {
		cs.off[i+1] = cs.off[i] + cn
	}
	par.Each(n, nw, 0, func(worker, lo, hi int) {
		w := walkers[worker]
		for si := lo; si < hi; si++ {
			copy(cs.gates[cs.off[si]:cs.off[si+1]], w.cone(c, sources[si]))
		}
	})
	return cs
}

// SideSensitization returns S_is: the probability that gate s is
// sensitized to its input from gate i, i.e. all *other* inputs of s
// carry non-controlling values, using the static probabilities in res.
// Gates without a controlling value (XOR/XNOR/NOT/BUF) are always
// sensitized (S=1), as a value change on any input always changes the
// output for fixed other inputs.
func SideSensitization(c *ckt.Circuit, res *Result, i, s int) float64 {
	g := c.Gates[s]
	cv, has := g.Type.ControllingValue()
	if !has {
		return 1
	}
	p := 1.0
	for _, f := range g.Fanin {
		if f == i {
			continue
		}
		pf := res.P1[f]
		if cv {
			// Controlling value is 1: others must be 0.
			p *= 1 - pf
		} else {
			// Controlling value is 0: others must be 1.
			p *= pf
		}
	}
	return p
}
