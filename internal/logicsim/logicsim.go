// Package logicsim performs zero-delay logic simulation of a circuit:
// 64-way bit-parallel random-vector evaluation, static signal
// probabilities, and the sensitization probabilities P_ij ("the
// probability that there is at least one path sensitized from output
// of gate i to primary output j") that ASERTA's logical-masking model
// needs. The paper estimates P_ij with zero-delay simulation of 10,000
// random inputs; this package reproduces that with exact bit-parallel
// fault simulation of each gate's fanout cone.
package logicsim

import (
	"fmt"
	"math/bits"

	"repro/internal/ckt"
	"repro/internal/stats"
)

// DefaultVectors is the paper's random-vector count for estimating
// sensitization probabilities.
const DefaultVectors = 10000

// Evaluate computes all gate values for one input vector (indexed by
// ckt.Circuit.Inputs order). The result is indexed by gate ID.
func Evaluate(c *ckt.Circuit, inputs []bool) ([]bool, error) {
	if len(inputs) != len(c.Inputs()) {
		return nil, fmt.Errorf("logicsim: %d inputs for %d PIs", len(inputs), len(c.Inputs()))
	}
	val := make([]bool, len(c.Gates))
	for i, id := range c.Inputs() {
		val[id] = inputs[i]
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	in := make([]bool, 0, 8)
	for _, id := range order {
		g := c.Gates[id]
		if g.Type == ckt.Input {
			continue
		}
		in = in[:0]
		for _, f := range g.Fanin {
			in = append(in, val[f])
		}
		val[id] = g.Type.Eval(in)
	}
	return val, nil
}

// Result holds the statistics ASERTA consumes.
type Result struct {
	// N is the number of random vectors simulated.
	N int
	// P1[id] is the static probability of gate id's output being 1.
	P1 []float64
	// Activity[id] is the per-cycle toggle probability 2·p·(1−p)
	// (random consecutive vectors are independent).
	Activity []float64
	// Pij[id][k] is the probability that at least one path from gate
	// id is sensitized to the k-th primary output (k indexes
	// Circuit.Outputs()). For a PO gate itself, P_jj = 1 per the paper.
	Pij [][]float64

	poCol map[int]int
}

// POColumn returns the Pij column index of a PO gate ID.
func (r *Result) POColumn(poGate int) (int, bool) {
	k, ok := r.poCol[poGate]
	return k, ok
}

// Analyze runs nVectors random vectors (PI probability 0.5, as in the
// paper) and estimates static probabilities and sensitization
// probabilities for every gate.
func Analyze(c *ckt.Circuit, nVectors int, rng *stats.RNG) (*Result, error) {
	if nVectors <= 0 {
		nVectors = DefaultVectors
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	nGates := len(c.Gates)
	nWords := (nVectors + 63) / 64
	lastMask := ^uint64(0)
	if r := nVectors % 64; r != 0 {
		lastMask = (uint64(1) << uint(r)) - 1
	}

	// Base simulation.
	base := make([][]uint64, nGates)
	for _, id := range c.Inputs() {
		w := make([]uint64, nWords)
		for k := range w {
			w[k] = rng.Uint64()
		}
		w[nWords-1] &= lastMask
		base[id] = w
	}
	scratchIn := make([]uint64, 0, 16)
	evalGate := func(g *ckt.Gate, src func(int) []uint64, k int) uint64 {
		in := scratchIn[:0]
		for _, f := range g.Fanin {
			in = append(in, src(f)[k])
		}
		return g.Type.EvalWord(in)
	}
	for _, id := range order {
		g := c.Gates[id]
		if g.Type == ckt.Input {
			continue
		}
		w := make([]uint64, nWords)
		for k := 0; k < nWords; k++ {
			w[k] = evalGate(g, func(f int) []uint64 { return base[f] }, k)
		}
		w[nWords-1] &= lastMask
		base[id] = w
	}

	res := &Result{
		N:        nVectors,
		P1:       make([]float64, nGates),
		Activity: make([]float64, nGates),
		Pij:      make([][]float64, nGates),
		poCol:    make(map[int]int),
	}
	pos := c.Outputs()
	for k, id := range pos {
		res.poCol[id] = k
	}
	for id := 0; id < nGates; id++ {
		ones := 0
		for _, w := range base[id] {
			ones += popcount(w)
		}
		p := float64(ones) / float64(nVectors)
		res.P1[id] = p
		res.Activity[id] = 2 * p * (1 - p)
		res.Pij[id] = make([]float64, len(pos))
	}

	// Bit-parallel path-sensitization analysis. The paper defines
	// P_ij as "the probability that there is at least one path
	// sensitized from output of gate i to primary output j": a path is
	// sensitized under a vector when every side input along it carries
	// a non-controlling value. Per vector this is a boolean DP over
	// the fanout cone:
	//
	//	sens(i)    = 1
	//	sens(g)    = OR over fanins f of sens(f) AND sideOK(g, f)
	//	sideOK(g,f)= all inputs of g other than f non-controlling
	//
	// and P_ij = Pr[sens(j)]. (Flip-based fault simulation would also
	// count multi-path cancellation effects, under which the paper's
	// Lemma 1 does not hold; path sensitization is the paper's model.)
	//
	// sideOK depends only on base values, so it is precomputed per
	// fanin edge.
	posIdx := make([]int, nGates)
	for i, id := range order {
		posIdx[id] = i
	}
	sideOK := make([][][]uint64, nGates)
	for _, id := range order {
		g := c.Gates[id]
		if g.Type == ckt.Input {
			continue
		}
		sideOK[id] = make([][]uint64, len(g.Fanin))
		cv, hasCV := g.Type.ControllingValue()
		for fi := range g.Fanin {
			w := make([]uint64, nWords)
			for k := range w {
				ok := ^uint64(0)
				if hasCV {
					for oi, f := range g.Fanin {
						if oi == fi {
							continue
						}
						if cv {
							// Controlling value 1: others must be 0.
							ok &= ^base[f][k]
						} else {
							ok &= base[f][k]
						}
					}
				}
				w[k] = ok
			}
			w[nWords-1] &= lastMask
			sideOK[id][fi] = w
		}
	}
	sens := make([][]uint64, nGates)
	mark := make([]int, nGates) // epoch marker
	for i := range sens {
		sens[i] = make([]uint64, nWords)
		mark[i] = -1
	}
	epoch := 0
	for _, fid := range order {
		fg := c.Gates[fid]
		if fg.Type == ckt.Input {
			continue // the paper injects at gate outputs only
		}
		epoch++
		for k := 0; k < nWords; k++ {
			sens[fid][k] = ^uint64(0)
		}
		sens[fid][nWords-1] &= lastMask
		mark[fid] = epoch
		for oi := posIdx[fid] + 1; oi < len(order); oi++ {
			id := order[oi]
			g := c.Gates[id]
			if g.Type == ckt.Input {
				continue
			}
			inCone := false
			for _, f := range g.Fanin {
				if mark[f] == epoch {
					inCone = true
					break
				}
			}
			if !inCone {
				continue
			}
			any := uint64(0)
			for k := 0; k < nWords; k++ {
				v := uint64(0)
				for fi, f := range g.Fanin {
					if mark[f] == epoch {
						v |= sens[f][k] & sideOK[id][fi][k]
					}
				}
				sens[id][k] = v
				any |= v
			}
			if any != 0 {
				mark[id] = epoch
			}
		}
		for k2, poID := range pos {
			if poID == fid {
				// Paper: "For primary output j, Pjj is 1."
				res.Pij[fid][k2] = 1
				continue
			}
			if mark[poID] != epoch {
				continue
			}
			cnt := 0
			for k := 0; k < nWords; k++ {
				cnt += popcount(sens[poID][k])
			}
			res.Pij[fid][k2] = float64(cnt) / float64(nVectors)
		}
	}
	return res, nil
}

func popcount(x uint64) int { return bits.OnesCount64(x) }

// SideSensitization returns S_is: the probability that gate s is
// sensitized to its input from gate i, i.e. all *other* inputs of s
// carry non-controlling values, using the static probabilities in res.
// Gates without a controlling value (XOR/XNOR/NOT/BUF) are always
// sensitized (S=1), as a value change on any input always changes the
// output for fixed other inputs.
func SideSensitization(c *ckt.Circuit, res *Result, i, s int) float64 {
	g := c.Gates[s]
	cv, has := g.Type.ControllingValue()
	if !has {
		return 1
	}
	p := 1.0
	for _, f := range g.Fanin {
		if f == i {
			continue
		}
		pf := res.P1[f]
		if cv {
			// Controlling value is 1: others must be 0.
			p *= 1 - pf
		} else {
			// Controlling value is 0: others must be 1.
			p *= pf
		}
	}
	return p
}
