// Package logicsim performs zero-delay logic simulation of a circuit:
// 64-way bit-parallel random-vector evaluation, static signal
// probabilities, and the sensitization probabilities P_ij ("the
// probability that there is at least one path sensitized from output
// of gate i to primary output j") that ASERTA's logical-masking model
// needs. The paper estimates P_ij with zero-delay simulation of 10,000
// random inputs; this package reproduces that with exact bit-parallel
// fault simulation of each gate's fanout cone.
//
// The analysis is built for throughput: all bit-vector state lives in
// flat arenas indexed by gateID*nWords (no per-gate allocations in the
// hot path), fanout cones are precomputed once in levelized order, and
// the per-source-gate sensitization DP — embarrassingly parallel, as
// each source's cone walk is independent — fans out over a worker
// pool. Results are bit-identical to the serial evaluation order for a
// fixed seed regardless of worker count.
package logicsim

import (
	"fmt"
	"math/bits"

	"repro/internal/ckt"
	"repro/internal/engine"
	"repro/internal/par"
	"repro/internal/stats"
)

// DefaultVectors is the paper's random-vector count for estimating
// sensitization probabilities.
const DefaultVectors = engine.DefaultVectors

// maxConeEntries bounds the memory of the precomputed fanout-cone
// arena (entries are int32 gate IDs). Past the budget the DP falls
// back to scanning the topological suffix per source, which needs no
// arena and produces identical results. (A var so tests can force the
// fallback path.)
var maxConeEntries = 1 << 25

// maxScratchBytes bounds the combined per-worker sensitization
// arenas: on very large circuits the worker count is reduced rather
// than letting parallelism multiply peak memory past the budget.
const maxScratchBytes = 1 << 30

// Evaluate computes all gate values for one input vector (indexed by
// ckt.Circuit.Inputs order). The result is indexed by gate ID.
func Evaluate(c *ckt.Circuit, inputs []bool) ([]bool, error) {
	if len(inputs) != len(c.Inputs()) {
		return nil, fmt.Errorf("logicsim: %d inputs for %d PIs", len(inputs), len(c.Inputs()))
	}
	if c.Sequential() {
		return nil, fmt.Errorf("logicsim: circuit %q has flip-flops; use SimulateFrames", c.Name)
	}
	val := make([]bool, len(c.Gates))
	for i, id := range c.Inputs() {
		val[id] = inputs[i]
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	in := make([]bool, 0, 8)
	for _, id := range order {
		g := c.Gates[id]
		if g.Type == ckt.Input {
			continue
		}
		in = in[:0]
		for _, f := range g.Fanin {
			in = append(in, val[f])
		}
		val[id] = g.Type.Eval(in)
	}
	return val, nil
}

// Result holds the statistics ASERTA consumes.
type Result struct {
	// N is the number of random vectors simulated.
	N int
	// P1[id] is the static probability of gate id's output being 1.
	P1 []float64
	// Activity[id] is the per-cycle toggle probability 2·p·(1−p)
	// (random consecutive vectors are independent).
	Activity []float64
	// Pij[id][k] is the probability that at least one path from gate
	// id is sensitized to the k-th primary output (k indexes
	// Circuit.Outputs()). For a PO gate itself, P_jj = 1 per the paper.
	// Rows are views into one flat backing array.
	Pij [][]float64

	poCol map[int]int
}

// POColumn returns the Pij column index of a PO gate ID.
func (r *Result) POColumn(poGate int) (int, bool) {
	k, ok := r.poCol[poGate]
	return k, ok
}

// MemoWeight reports the result's retained size in cache-weight units
// (engine.MemoWeigher, ~128 bytes per unit): the flat Pij arena
// dominates, so a serving tier's compiled-circuit cache charges
// memoized sensitization results against its budget instead of
// letting seed-cycling clients retain them for free.
func (r *Result) MemoWeight() int64 {
	bytes := int64(len(r.P1)+len(r.Activity)) * 8
	if len(r.Pij) > 0 {
		bytes += int64(len(r.Pij)) * int64(len(r.Pij[0])) * 8
	}
	return bytes / 128
}

// Analyze runs nVectors random vectors (PI probability 0.5, as in the
// paper) and estimates static probabilities and sensitization
// probabilities for every gate, using one DP worker per available CPU.
func Analyze(c *ckt.Circuit, nVectors int, rng *stats.RNG) (*Result, error) {
	return AnalyzeWorkers(c, nVectors, rng, 0)
}

// AnalyzeWorkers is Analyze with an explicit worker count (<= 0 means
// one per available CPU). Results are bit-identical for any count.
// It compiles the circuit on the fly; callers analyzing one netlist
// repeatedly should compile once and use AnalyzeCompiled (or the
// memoized Sensitization).
func AnalyzeWorkers(c *ckt.Circuit, nVectors int, rng *stats.RNG, workers int) (*Result, error) {
	cc, err := engine.Compile(c)
	if err != nil {
		return nil, err
	}
	return AnalyzeCompiled(cc, nVectors, rng, workers)
}

// sensKey memoizes Sensitization results on the compiled handle. The
// lane width is part of the key even though results are bit-identical
// across widths: a mixed-width workload must never block one width's
// callers on another width's in-flight build, and the key documents
// which engine produced the retained value.
type sensKey struct {
	vectors int
	seed    uint64
	lanes   int
}

// conesKey memoizes the fanout-cone CSR arena on the compiled handle.
type conesKey struct{}

// Sensitization returns the sensitization statistics for the compiled
// circuit at the given vector count and seed, memoized on the handle:
// the 10,000-vector simulation — the dominant cost of a warm analysis —
// runs once per (vectors, seed) pair no matter how many analyses share
// the handle, and concurrent callers coalesce on one run. The result
// is bit-identical to Analyze(cc.Circuit(), vectors,
// stats.NewRNG(seed)) and must be treated as read-only.
func Sensitization(cc *engine.CompiledCircuit, vectors int, seed uint64) (*Result, error) {
	if vectors <= 0 {
		vectors = DefaultVectors
	}
	v, err := cc.Memo(sensKey{vectors, seed, 1}, func() (any, error) {
		return AnalyzeCompiled(cc, vectors, stats.NewRNG(seed), 0)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Result), nil
}

// AnalyzeCompiled is AnalyzeWorkers over a pre-compiled circuit: the
// topological order, fanin-edge offsets and fanout-cone arena come
// from (or are memoized on) the handle instead of being re-derived per
// call. Results are bit-identical to AnalyzeWorkers for any worker
// count.
func AnalyzeCompiled(cc *engine.CompiledCircuit, nVectors int, rng *stats.RNG, workers int) (*Result, error) {
	c := cc.Circuit()
	if nVectors <= 0 {
		nVectors = DefaultVectors
	}
	if c.Sequential() {
		return nil, fmt.Errorf("logicsim: circuit %q has flip-flops; analyze its combinational frame (seq.BuildFrame) or use SimulateFrames", c.Name)
	}
	order := cc.TopoOrder()
	nGates := len(c.Gates)
	nWords := (nVectors + 63) / 64
	lastMask := ^uint64(0)
	if r := nVectors % 64; r != 0 {
		lastMask = (uint64(1) << uint(r)) - 1
	}

	// Base simulation over one flat arena, indexed gateID*nWords. The
	// PI words consume the RNG stream in Inputs() order, so the vector
	// set matches the historical serial implementation exactly.
	base := make([]uint64, nGates*nWords)
	for _, id := range c.Inputs() {
		w := base[id*nWords : (id+1)*nWords]
		for k := range w {
			w[k] = rng.Uint64()
		}
		w[nWords-1] &= lastMask
	}
	maxFanin := 0
	for _, g := range c.Gates {
		if len(g.Fanin) > maxFanin {
			maxFanin = len(g.Fanin)
		}
	}
	in := make([]uint64, maxFanin)
	for _, id := range order {
		g := c.Gates[id]
		if g.Type == ckt.Input {
			continue
		}
		w := base[id*nWords : (id+1)*nWords]
		fin := in[:len(g.Fanin)]
		for k := 0; k < nWords; k++ {
			for fi, f := range g.Fanin {
				fin[fi] = base[f*nWords+k]
			}
			w[k] = g.Type.EvalWord(fin)
		}
		w[nWords-1] &= lastMask
	}

	res := &Result{
		N:        nVectors,
		P1:       make([]float64, nGates),
		Activity: make([]float64, nGates),
		Pij:      make([][]float64, nGates),
		poCol:    make(map[int]int),
	}
	pos := c.Outputs()
	nPOs := len(pos)
	for k, id := range pos {
		res.poCol[id] = k
	}
	pijFlat := make([]float64, nGates*nPOs)
	for id := 0; id < nGates; id++ {
		ones := 0
		for _, w := range base[id*nWords : (id+1)*nWords] {
			ones += bits.OnesCount64(w)
		}
		p := float64(ones) / float64(nVectors)
		res.P1[id] = p
		res.Activity[id] = 2 * p * (1 - p)
		res.Pij[id] = pijFlat[id*nPOs : (id+1)*nPOs]
	}

	// Bit-parallel path-sensitization analysis. The paper defines
	// P_ij as "the probability that there is at least one path
	// sensitized from output of gate i to primary output j": a path is
	// sensitized under a vector when every side input along it carries
	// a non-controlling value. Per vector this is a boolean DP over
	// the fanout cone:
	//
	//	sens(i)    = 1
	//	sens(g)    = OR over fanins f of sens(f) AND sideOK(g, f)
	//	sideOK(g,f)= all inputs of g other than f non-controlling
	//
	// and P_ij = Pr[sens(j)]. (Flip-based fault simulation would also
	// count multi-path cancellation effects, under which the paper's
	// Lemma 1 does not hold; path sensitization is the paper's model.)
	//
	// sideOK depends only on base values, so it is precomputed per
	// fanin edge into a flat edge arena (gates are independent — the
	// fill is parallel).
	posIdx := make([]int, nGates)
	for i, id := range order {
		posIdx[id] = i
	}
	edgeOff := cc.FaninEdgeOffsets()
	sideOK := make([]uint64, edgeOff[nGates]*nWords)
	par.ForChunks(nGates, workers, 0, func(lo, hi int) {
		for id := lo; id < hi; id++ {
			g := c.Gates[id]
			if g.Type == ckt.Input {
				continue
			}
			cv, hasCV := g.Type.ControllingValue()
			for fi := range g.Fanin {
				w := sideOK[(edgeOff[id]+fi)*nWords : (edgeOff[id]+fi+1)*nWords]
				for k := range w {
					ok := ^uint64(0)
					if hasCV {
						for oi, f := range g.Fanin {
							if oi == fi {
								continue
							}
							if cv {
								// Controlling value 1: others must be 0.
								ok &= ^base[f*nWords+k]
							} else {
								ok &= base[f*nWords+k]
							}
						}
					}
					w[k] = ok
				}
				w[nWords-1] &= lastMask
			}
		}
	})

	// Source gates: every non-input gate, in topological order.
	sources := make([]int, 0, nGates)
	for _, id := range order {
		if c.Gates[id].Type != ckt.Input {
			sources = append(sources, id) // the paper injects at gate outputs only
		}
	}

	cones := conesFor(cc, order, posIdx, sources, workers)

	nw := par.Workers(workers)
	if nw > len(sources) {
		nw = len(sources)
	}
	// Each worker owns a full sensitization arena; cap the worker
	// count so the combined scratch stays within budget on huge
	// circuits (the serial path always fits one arena).
	if per := nGates * nWords * 8; per > 0 {
		if maxW := maxScratchBytes / per; nw > maxW {
			nw = maxW
		}
		if nw < 1 {
			nw = 1
		}
	}
	scratches := make([]*dpScratch, nw)
	for i := range scratches {
		scratches[i] = &dpScratch{
			sens: make([]uint64, nGates*nWords),
			mark: make([]int, nGates),
		}
		for j := range scratches[i].mark {
			scratches[i].mark[j] = -1
		}
	}
	par.Each(len(sources), nw, 1, func(worker, lo, hi int) {
		sc := scratches[worker]
		for si := lo; si < hi; si++ {
			fid := sources[si]
			sc.epoch++
			row := sc.sens[fid*nWords : (fid+1)*nWords]
			for k := range row {
				row[k] = ^uint64(0)
			}
			row[nWords-1] &= lastMask
			sc.mark[fid] = sc.epoch
			if cones != nil {
				for _, id := range cones.of(si) {
					dpGate(c.Gates[id], int(id), sc, sideOK, edgeOff, nWords)
				}
			} else {
				for oi := posIdx[fid] + 1; oi < len(order); oi++ {
					id := order[oi]
					g := c.Gates[id]
					if g.Type == ckt.Input {
						continue
					}
					dpGate(g, id, sc, sideOK, edgeOff, nWords)
				}
			}
			out := res.Pij[fid]
			for k2, poID := range pos {
				if poID == fid {
					// Paper: "For primary output j, Pjj is 1."
					out[k2] = 1
					continue
				}
				if sc.mark[poID] != sc.epoch {
					continue
				}
				cnt := 0
				for _, w := range sc.sens[poID*nWords : (poID+1)*nWords] {
					cnt += bits.OnesCount64(w)
				}
				out[k2] = float64(cnt) / float64(nVectors)
			}
		}
	})
	return res, nil
}

// dpScratch is one DP worker's private state: a sensitization arena
// and an epoch-marked membership array, both reused across sources so
// the inner loop never allocates.
type dpScratch struct {
	sens  []uint64
	mark  []int
	epoch int
}

// dpGate advances the sensitization DP through one gate: OR together
// each marked fanin's sensitization masked by that edge's side-input
// condition, and mark the gate when any vector survives.
func dpGate(g *ckt.Gate, id int, sc *dpScratch, sideOK []uint64, edgeOff []int, nWords int) {
	inCone := false
	for _, f := range g.Fanin {
		if sc.mark[f] == sc.epoch {
			inCone = true
			break
		}
	}
	if !inCone {
		return
	}
	row := sc.sens[id*nWords : (id+1)*nWords]
	any := uint64(0)
	for k := 0; k < nWords; k++ {
		v := uint64(0)
		for fi, f := range g.Fanin {
			if sc.mark[f] == sc.epoch {
				v |= sc.sens[f*nWords+k] & sideOK[(edgeOff[id]+fi)*nWords+k]
			}
		}
		row[k] = v
		any |= v
	}
	if any != 0 {
		sc.mark[id] = sc.epoch
	}
}

// coneBox wraps the memoized cone arena: the arena is legitimately nil
// past the memory budget, and a typed wrapper keeps that distinct from
// a missing memo value.
type coneBox struct{ cs *coneSet }

// MemoWeight reports the cone arena's retained size in cache-weight
// units (engine.MemoWeigher).
func (b coneBox) MemoWeight() int64 {
	if b.cs == nil {
		return 0
	}
	return int64(len(b.cs.gates)) * 4 / 128
}

// conesFor returns the fanout-cone CSR arena for the compiled circuit,
// memoized on the handle — the arena depends only on the netlist, so
// every sensitization run against one handle shares it. The build is
// deterministic in the netlist regardless of the worker count.
func conesFor(cc *engine.CompiledCircuit, order, posIdx, sources []int, workers int) *coneSet {
	v, _ := cc.Memo(conesKey{}, func() (any, error) {
		return coneBox{precomputeCones(cc.Circuit(), order, posIdx, sources, workers)}, nil
	})
	return v.(coneBox).cs
}

// coneSet is a CSR arena of precomputed fanout cones: cone i holds the
// non-input gates strictly downstream of sources[i], in topological
// (levelized) order.
type coneSet struct {
	off   []int
	gates []int32
}

func (cs *coneSet) of(i int) []int32 { return cs.gates[cs.off[i]:cs.off[i+1]] }

// precomputeCones builds the cone arena with a parallel mark sweep per
// source (counting pass, then a fill pass into the shared arena).
// Returns nil when the arena would exceed the memory budget; callers
// then fall back to scanning the topological suffix.
func precomputeCones(c *ckt.Circuit, order, posIdx, sources []int, workers int) *coneSet {
	n := len(sources)
	if n == 0 {
		return &coneSet{off: make([]int, 1)}
	}
	counts := make([]int, n)
	nw := par.Workers(workers)
	marks := make([][]int, nw)
	epochs := make([]int, nw)
	for i := range marks {
		marks[i] = make([]int, len(c.Gates))
		for j := range marks[i] {
			marks[i][j] = -1
		}
	}
	sweep := func(worker, si int, emit []int32) int {
		mark := marks[worker]
		epochs[worker]++
		epoch := epochs[worker]
		fid := sources[si]
		mark[fid] = epoch
		cnt := 0
		for oi := posIdx[fid] + 1; oi < len(order); oi++ {
			id := order[oi]
			g := c.Gates[id]
			if g.Type == ckt.Input {
				continue
			}
			for _, f := range g.Fanin {
				if mark[f] == epoch {
					mark[id] = epoch
					if emit != nil {
						emit[cnt] = int32(id)
					}
					cnt++
					break
				}
			}
		}
		return cnt
	}
	par.Each(n, nw, 0, func(worker, lo, hi int) {
		for si := lo; si < hi; si++ {
			counts[si] = sweep(worker, si, nil)
		}
	})
	total := 0
	for _, cn := range counts {
		total += cn
	}
	if total > maxConeEntries {
		return nil
	}
	cs := &coneSet{off: make([]int, n+1), gates: make([]int32, total)}
	for i, cn := range counts {
		cs.off[i+1] = cs.off[i] + cn
	}
	par.Each(n, nw, 0, func(worker, lo, hi int) {
		for si := lo; si < hi; si++ {
			sweep(worker, si, cs.gates[cs.off[si]:cs.off[si+1]])
		}
	})
	return cs
}

// SideSensitization returns S_is: the probability that gate s is
// sensitized to its input from gate i, i.e. all *other* inputs of s
// carry non-controlling values, using the static probabilities in res.
// Gates without a controlling value (XOR/XNOR/NOT/BUF) are always
// sensitized (S=1), as a value change on any input always changes the
// output for fixed other inputs.
func SideSensitization(c *ckt.Circuit, res *Result, i, s int) float64 {
	g := c.Gates[s]
	cv, has := g.Type.ControllingValue()
	if !has {
		return 1
	}
	p := 1.0
	for _, f := range g.Fanin {
		if f == i {
			continue
		}
		pf := res.P1[f]
		if cv {
			// Controlling value is 1: others must be 0.
			p *= 1 - pf
		} else {
			// Controlling value is 0: others must be 1.
			p *= pf
		}
	}
	return p
}
