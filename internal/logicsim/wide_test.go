package logicsim

import (
	"testing"

	"repro/internal/ckt"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/stats"
)

// mustEqualResults asserts two analyses are bit-identical (==, not
// within epsilon: both engines accumulate the same integer counts).
func mustEqualResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("%s: N = %d, want %d", label, got.N, want.N)
	}
	for id := range want.P1 {
		if got.P1[id] != want.P1[id] {
			t.Fatalf("%s: P1[%d] = %v, want %v", label, id, got.P1[id], want.P1[id])
		}
		if got.Activity[id] != want.Activity[id] {
			t.Fatalf("%s: Activity[%d] = %v, want %v", label, id, got.Activity[id], want.Activity[id])
		}
		for j := range want.Pij[id] {
			if got.Pij[id][j] != want.Pij[id][j] {
				t.Fatalf("%s: Pij[%d][%d] = %v, want %v", label, id, j, got.Pij[id][j], want.Pij[id][j])
			}
		}
	}
}

// TestLanesBitIdentical checks the wide engine (W=4, W=8) against the
// historical W=1 engine word for word, across vector counts that
// exercise full chunks, partial chunks and runs shorter than one lane.
func TestLanesBitIdentical(t *testing.T) {
	c432, err := gen.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	xor, err := gen.Generate(gen.Profile{
		Name: "xorish", PIs: 12, POs: 6, Gates: 80, Depth: 8, Seed: 9,
		TypeMix: map[ckt.GateType]float64{ckt.Xor: 0.5, ckt.Nand: 0.3, ckt.Or: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		c    *ckt.Circuit
		nVec []int
	}{
		{"c17", gen.C17(), []int{1, 63, 64, 100, 512, 1000}},
		{"xorish", xor, []int{97, 256, 513, 2000}},
		{"c432", c432, []int{1000, 4000}},
	} {
		cc := engine.MustCompile(tc.c)
		for _, nVec := range tc.nVec {
			want, err := AnalyzeCompiled(cc, nVec, stats.NewRNG(1), 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, lanes := range []int{4, 8} {
				got, err := AnalyzeCompiledLanes(cc, nVec, stats.NewRNG(1), 0, lanes)
				if err != nil {
					t.Fatal(err)
				}
				mustEqualResults(t, tc.name+"/"+itoa2(nVec)+"/W="+itoa2(lanes), got, want)
			}
		}
	}
}

// TestLanesConeFallback forces the suffix-scan fallback (no cone
// arena) in the wide engine and checks bit-identity against the
// default path's reference.
func TestLanesConeFallback(t *testing.T) {
	c, err := gen.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	want, err := AnalyzeWorkers(c, 2000, stats.NewRNG(7), 1)
	if err != nil {
		t.Fatal(err)
	}
	saved := maxConeEntries
	maxConeEntries = 0
	defer func() { maxConeEntries = saved }()
	cc := engine.MustCompile(c) // fresh handle: no memoized cone arena
	got, err := AnalyzeCompiledLanes(cc, 2000, stats.NewRNG(7), 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "fallback", got, want)
}

// TestSensitizationLanesMemo checks the handle memo serves each lane
// width under its own key while the statistics stay bit-identical.
func TestSensitizationLanesMemo(t *testing.T) {
	c, err := gen.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	cc := engine.MustCompile(c)
	r1, err := SensitizationLanes(cc, 1000, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := SensitizationLanes(cc, 1000, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r8 {
		t.Fatal("lane widths share one memo entry; keys must differ")
	}
	mustEqualResults(t, "memo", r8, r1)
	again, err := SensitizationLanes(cc, 1000, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if again != r8 {
		t.Fatal("repeated W=8 call was not served from the memo")
	}
	viaDefault, err := Sensitization(cc, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if viaDefault != r1 {
		t.Fatal("Sensitization must share the W=1 memo entry")
	}
}

// FuzzSimWide differentially fuzzes the wide engine: on a random
// profile-generated netlist with fuzzed vector counts and seeds, the
// W=4 and W=8 analyses must equal the W=1 reference word for word.
func FuzzSimWide(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint8(8), uint8(30), uint8(4), uint16(100))
	f.Add(uint64(7), uint64(5), uint8(4), uint8(60), uint8(6), uint16(517))
	f.Add(uint64(42), uint64(9), uint8(16), uint8(120), uint8(9), uint16(1000))
	f.Fuzz(func(t *testing.T, genSeed, simSeed uint64, pis, gates, depth uint8, nVec uint16) {
		p := gen.Profile{
			Name:  "fuzz",
			PIs:   2 + int(pis%24),
			POs:   1 + int(pis%8),
			Gates: 8 + int(gates),
			Depth: 2 + int(depth%16),
			Seed:  genSeed,
		}
		if p.Gates < p.POs {
			p.Gates = p.POs
		}
		c, err := gen.Generate(p)
		if err != nil {
			t.Skip() // unsatisfiable profile, not a simulator bug
		}
		n := 1 + int(nVec%1200)
		cc := engine.MustCompile(c)
		want, err := AnalyzeCompiled(cc, n, stats.NewRNG(simSeed), 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, lanes := range []int{4, 8} {
			got, err := AnalyzeCompiledLanes(cc, n, stats.NewRNG(simSeed), 0, lanes)
			if err != nil {
				t.Fatal(err)
			}
			mustEqualResults(t, "W="+itoa2(lanes), got, want)
		}
	})
}

func itoa2(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
