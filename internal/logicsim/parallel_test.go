package logicsim

import (
	"math/bits"
	"testing"

	"repro/internal/ckt"
	"repro/internal/gen"
	"repro/internal/stats"
)

// analyzeReference is the historical serial implementation of Analyze
// (per-gate slices, single-threaded suffix-scan DP), kept verbatim as
// the ground truth for the arena-backed parallel rewrite: for a fixed
// seed the two must agree bit for bit.
func analyzeReference(c *ckt.Circuit, nVectors int, rng *stats.RNG) (*Result, error) {
	if nVectors <= 0 {
		nVectors = DefaultVectors
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	nGates := len(c.Gates)
	nWords := (nVectors + 63) / 64
	lastMask := ^uint64(0)
	if r := nVectors % 64; r != 0 {
		lastMask = (uint64(1) << uint(r)) - 1
	}

	base := make([][]uint64, nGates)
	for _, id := range c.Inputs() {
		w := make([]uint64, nWords)
		for k := range w {
			w[k] = rng.Uint64()
		}
		w[nWords-1] &= lastMask
		base[id] = w
	}
	scratchIn := make([]uint64, 0, 16)
	for _, id := range order {
		g := c.Gates[id]
		if g.Type == ckt.Input {
			continue
		}
		w := make([]uint64, nWords)
		for k := 0; k < nWords; k++ {
			in := scratchIn[:0]
			for _, f := range g.Fanin {
				in = append(in, base[f][k])
			}
			w[k] = g.Type.EvalWord(in)
		}
		w[nWords-1] &= lastMask
		base[id] = w
	}

	res := &Result{
		N:        nVectors,
		P1:       make([]float64, nGates),
		Activity: make([]float64, nGates),
		Pij:      make([][]float64, nGates),
		poCol:    make(map[int]int),
	}
	pos := c.Outputs()
	for k, id := range pos {
		res.poCol[id] = k
	}
	for id := 0; id < nGates; id++ {
		ones := 0
		for _, w := range base[id] {
			ones += bits.OnesCount64(w)
		}
		p := float64(ones) / float64(nVectors)
		res.P1[id] = p
		res.Activity[id] = 2 * p * (1 - p)
		res.Pij[id] = make([]float64, len(pos))
	}

	posIdx := make([]int, nGates)
	for i, id := range order {
		posIdx[id] = i
	}
	sideOK := make([][][]uint64, nGates)
	for _, id := range order {
		g := c.Gates[id]
		if g.Type == ckt.Input {
			continue
		}
		sideOK[id] = make([][]uint64, len(g.Fanin))
		cv, hasCV := g.Type.ControllingValue()
		for fi := range g.Fanin {
			w := make([]uint64, nWords)
			for k := range w {
				ok := ^uint64(0)
				if hasCV {
					for oi, f := range g.Fanin {
						if oi == fi {
							continue
						}
						if cv {
							ok &= ^base[f][k]
						} else {
							ok &= base[f][k]
						}
					}
				}
				w[k] = ok
			}
			w[nWords-1] &= lastMask
			sideOK[id][fi] = w
		}
	}
	sens := make([][]uint64, nGates)
	mark := make([]int, nGates)
	for i := range sens {
		sens[i] = make([]uint64, nWords)
		mark[i] = -1
	}
	epoch := 0
	for _, fid := range order {
		fg := c.Gates[fid]
		if fg.Type == ckt.Input {
			continue
		}
		epoch++
		for k := 0; k < nWords; k++ {
			sens[fid][k] = ^uint64(0)
		}
		sens[fid][nWords-1] &= lastMask
		mark[fid] = epoch
		for oi := posIdx[fid] + 1; oi < len(order); oi++ {
			id := order[oi]
			g := c.Gates[id]
			if g.Type == ckt.Input {
				continue
			}
			inCone := false
			for _, f := range g.Fanin {
				if mark[f] == epoch {
					inCone = true
					break
				}
			}
			if !inCone {
				continue
			}
			any := uint64(0)
			for k := 0; k < nWords; k++ {
				v := uint64(0)
				for fi, f := range g.Fanin {
					if mark[f] == epoch {
						v |= sens[f][k] & sideOK[id][fi][k]
					}
				}
				sens[id][k] = v
				any |= v
			}
			if any != 0 {
				mark[id] = epoch
			}
		}
		for k2, poID := range pos {
			if poID == fid {
				res.Pij[fid][k2] = 1
				continue
			}
			if mark[poID] != epoch {
				continue
			}
			cnt := 0
			for k := 0; k < nWords; k++ {
				cnt += bits.OnesCount64(sens[poID][k])
			}
			res.Pij[fid][k2] = float64(cnt) / float64(nVectors)
		}
	}
	return res, nil
}

// TestAnalyzeParallelMatchesSerialReference asserts the worker-pool
// Analyze is bit-identical to the reference serial implementation on a
// c432-scale circuit for fixed RNG seeds, for several worker counts.
func TestAnalyzeParallelMatchesSerialReference(t *testing.T) {
	c, err := gen.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 42} {
		for _, nVec := range []int{1000, 4000} {
			want, err := analyzeReference(c, nVec, stats.NewRNG(seed))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 8} {
				got, err := AnalyzeWorkers(c, nVec, stats.NewRNG(seed), workers)
				if err != nil {
					t.Fatal(err)
				}
				if got.N != want.N {
					t.Fatalf("seed=%d N=%d workers=%d: vector count %d != %d", seed, nVec, workers, got.N, want.N)
				}
				for id := range want.P1 {
					if got.P1[id] != want.P1[id] {
						t.Fatalf("seed=%d N=%d workers=%d: P1[%d] = %v, want %v", seed, nVec, workers, id, got.P1[id], want.P1[id])
					}
					if got.Activity[id] != want.Activity[id] {
						t.Fatalf("seed=%d N=%d workers=%d: Activity[%d] = %v, want %v", seed, nVec, workers, id, got.Activity[id], want.Activity[id])
					}
					for j := range want.Pij[id] {
						if got.Pij[id][j] != want.Pij[id][j] {
							t.Fatalf("seed=%d N=%d workers=%d: Pij[%d][%d] = %v, want %v",
								seed, nVec, workers, id, j, got.Pij[id][j], want.Pij[id][j])
						}
					}
				}
			}
		}
	}
}

// TestAnalyzeConeFallbackMatches forces the suffix-scan fallback path
// (no precomputed cone arena) and checks it against the default path.
func TestAnalyzeConeFallbackMatches(t *testing.T) {
	c, err := gen.ISCAS85("c432")
	if err != nil {
		t.Fatal(err)
	}
	saved := maxConeEntries
	maxConeEntries = 0 // every cone set exceeds the budget
	defer func() { maxConeEntries = saved }()
	want, err := analyzeReference(c, 2000, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	got, err := AnalyzeWorkers(c, 2000, stats.NewRNG(7), 3)
	if err != nil {
		t.Fatal(err)
	}
	for id := range want.Pij {
		for j := range want.Pij[id] {
			if got.Pij[id][j] != want.Pij[id][j] {
				t.Fatalf("Pij[%d][%d] mismatch", id, j)
			}
		}
	}
}

func BenchmarkAnalyzeC432(b *testing.B) {
	c, err := gen.ISCAS85("c432")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(c, 10000, stats.NewRNG(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeC432Serial(b *testing.B) {
	c, err := gen.ISCAS85("c432")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analyzeReference(c, 10000, stats.NewRNG(1)); err != nil {
			b.Fatal(err)
		}
	}
}
