// Package benchfmt parses the standard output of `go test -bench` into
// a machine-readable report. The bench_test.go suite reports one
// benchmark per paper figure/table with the headline quantity attached
// via b.ReportMetric, so the parsed report doubles as the repository's
// results table; cmd/benchreport serializes it to BENCH_*.json to
// record the performance trajectory across PRs.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix and
	// without the -GOMAXPROCS suffix (e.g. "Fig3Correlation",
	// "ASERTAScaling/c432").
	Name string `json:"name"`
	// FullName is the name exactly as printed, including the
	// -GOMAXPROCS suffix.
	FullName string `json:"full_name"`
	// Iterations is the b.N the reported averages were taken over.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the wall-clock cost of one iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every additional "value unit" pair on the line:
	// b.ReportMetric outputs (correlation, %U-decrease, ...) and
	// -benchmem columns (B/op, allocs/op).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is a parsed benchmark run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` output. Unrecognized lines (test chatter,
// PASS/ok trailers) are skipped; header lines fill the report fields.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseLine(line)
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: read: %v", err)
	}
	return rep, nil
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName-8   3   1234 ns/op   0.98 correlation   512 B/op
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	full := fields[0]
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		FullName:   full,
		Name:       shortName(full),
		Iterations: iters,
	}
	// Remaining fields come in "value unit" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = v
	}
	return b, true
}

// shortName strips the "Benchmark" prefix and the trailing -GOMAXPROCS
// suffix (which is only present with GOMAXPROCS > 1).
func shortName(full string) string {
	name := strings.TrimPrefix(full, "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}
