package benchfmt

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CompareOptions tune the regression gate.
type CompareOptions struct {
	// MetricTol is the allowed relative drift of every paper metric
	// (correlation, %U-decrease, ps-glitch-size1, ...). The pipeline is
	// deterministic — parallel reductions are bit-identical to serial —
	// so the default is tight: 0.5%.
	MetricTol float64
	// NsFactor is the allowed ns/op slowdown factor. CI runners are
	// noisy and heterogenous, so the default bound is loose: 2.5x.
	// Speedups never fail.
	NsFactor float64
	// SkipMemMetrics excludes -benchmem columns (B/op, allocs/op) from
	// the metric check; allocation counts legitimately change with
	// GOMAXPROCS (per-worker scratch arenas). Default true via
	// WithDefaults.
	SkipMemMetrics bool
	// AllocFactor, when positive, still gates allocs/op with this
	// multiplicative bound even while SkipMemMetrics drops the exact
	// -benchmem comparison. Worker-count variation moves allocation
	// counts by small factors (one scratch arena per worker); a per-call
	// allocation regression in a hot loop moves them by orders of
	// magnitude, so a loose factor separates the two cleanly.
	AllocFactor float64
	// WidePairFactor bounds the ns/op ratio of each "<name>Wide"
	// benchmark over its scalar "<name>" counterpart against the same
	// ratio in the baseline. The pair runs on one machine in one
	// session, so the ratio pins the wide-lane engine's relative cost
	// much more tightly than two absolute ns/op gates on noisy,
	// heterogeneous runners ever could. Defaults to NsFactor.
	WidePairFactor float64
	// MemCeilingsB, when non-empty, gates the named benchmarks' B/op
	// against an absolute byte ceiling — independent of any baseline
	// (an empty baseline report works). Relative factors cannot pin
	// "a 1M-gate compile stays under N bytes"; an absolute ceiling
	// can, which is what keeps million-gate memory budgets honest in
	// CI. A benchmark named here must be present in the run and carry
	// a B/op metric (-benchmem), otherwise that is itself a violation
	// — a ceiling that silently stops being measured is no ceiling.
	MemCeilingsB map[string]float64
}

// WithDefaults fills zero fields with the gate defaults.
func (o CompareOptions) WithDefaults() CompareOptions {
	if o.MetricTol <= 0 {
		o.MetricTol = 0.005
	}
	if o.NsFactor <= 0 {
		o.NsFactor = 2.5
	}
	if o.WidePairFactor <= 0 {
		o.WidePairFactor = o.NsFactor
	}
	return o
}

// memMetrics are the -benchmem columns.
func isMemMetric(unit string) bool {
	return unit == "B/op" || unit == "allocs/op"
}

// Regression is one detected violation.
type Regression struct {
	// Benchmark is the short benchmark name; Metric the offending
	// quantity ("ns/op" or a paper-metric unit), empty when the whole
	// benchmark is missing.
	Benchmark string
	Metric    string
	Base, New float64
	// Reason is a human-readable explanation including the bound.
	Reason string
}

// String renders the regression as a one-line diagnostic.
func (r Regression) String() string {
	if r.Metric == "" {
		return fmt.Sprintf("%s: %s", r.Benchmark, r.Reason)
	}
	return fmt.Sprintf("%s %s: base %g, new %g (%s)", r.Benchmark, r.Metric, r.Base, r.New, r.Reason)
}

// Compare checks a new report against a baseline and returns every
// violation: a benchmark present in the baseline but missing from the
// new run, a paper metric drifting beyond MetricTol relative
// tolerance, or ns/op regressing beyond NsFactor. New benchmarks and
// new metrics (absent from the baseline) never fail — the trajectory
// only ratchets on what the baseline records.
func Compare(base, cur *Report, opts CompareOptions) []Regression {
	opts = opts.WithDefaults()
	curByName := make(map[string]*Benchmark, len(cur.Benchmarks))
	for i := range cur.Benchmarks {
		b := &cur.Benchmarks[i]
		curByName[b.Name] = b
	}
	var regs []Regression
	for i := range base.Benchmarks {
		bb := &base.Benchmarks[i]
		nb, ok := curByName[bb.Name]
		if !ok {
			regs = append(regs, Regression{
				Benchmark: bb.Name,
				Reason:    "benchmark present in baseline but missing from this run",
			})
			continue
		}
		if bb.NsPerOp > 0 && nb.NsPerOp > bb.NsPerOp*opts.NsFactor {
			regs = append(regs, Regression{
				Benchmark: bb.Name,
				Metric:    "ns/op",
				Base:      bb.NsPerOp,
				New:       nb.NsPerOp,
				Reason:    fmt.Sprintf("%.2fx slower, limit %.2fx", nb.NsPerOp/bb.NsPerOp, opts.NsFactor),
			})
		}
		for unit, bv := range bb.Metrics {
			if isMemMetric(unit) {
				if unit == "allocs/op" && opts.AllocFactor > 0 {
					if nv, ok := nb.Metrics[unit]; ok && bv > 0 && nv > bv*opts.AllocFactor {
						regs = append(regs, Regression{
							Benchmark: bb.Name,
							Metric:    unit,
							Base:      bv,
							New:       nv,
							Reason:    fmt.Sprintf("%.1fx more allocations, limit %.1fx", nv/bv, opts.AllocFactor),
						})
					}
					continue
				}
				if opts.SkipMemMetrics {
					continue
				}
			}
			nv, ok := nb.Metrics[unit]
			if !ok {
				regs = append(regs, Regression{
					Benchmark: bb.Name,
					Metric:    unit,
					Base:      bv,
					Reason:    "metric present in baseline but missing from this run",
				})
				continue
			}
			denom := math.Abs(bv)
			if denom < 1e-30 {
				denom = 1e-30
			}
			if drift := math.Abs(nv-bv) / denom; drift > opts.MetricTol {
				regs = append(regs, Regression{
					Benchmark: bb.Name,
					Metric:    unit,
					Base:      bv,
					New:       nv,
					Reason:    fmt.Sprintf("drift %.4f%%, tolerance %.4f%%", 100*drift, 100*opts.MetricTol),
				})
			}
		}
	}
	regs = append(regs, compareWidePairs(base, curByName, opts)...)
	regs = append(regs, compareMemCeilings(curByName, opts)...)
	return regs
}

// compareMemCeilings applies the absolute B/op ceilings in
// deterministic (sorted) order.
func compareMemCeilings(curByName map[string]*Benchmark, opts CompareOptions) []Regression {
	names := make([]string, 0, len(opts.MemCeilingsB))
	for name := range opts.MemCeilingsB {
		names = append(names, name)
	}
	sort.Strings(names)
	var regs []Regression
	for _, name := range names {
		ceil := opts.MemCeilingsB[name]
		nb, ok := curByName[name]
		if !ok {
			regs = append(regs, Regression{
				Benchmark: name,
				Metric:    "B/op",
				Base:      ceil,
				Reason:    "benchmark has a B/op ceiling but is missing from this run",
			})
			continue
		}
		bop, ok := nb.Metrics["B/op"]
		if !ok {
			regs = append(regs, Regression{
				Benchmark: name,
				Metric:    "B/op",
				Base:      ceil,
				Reason:    "B/op ceiling set but the run has no B/op metric (need -benchmem)",
			})
			continue
		}
		if bop > ceil {
			regs = append(regs, Regression{
				Benchmark: name,
				Metric:    "B/op",
				Base:      ceil,
				New:       bop,
				Reason:    fmt.Sprintf("%.0f B/op over the absolute ceiling %.0f", bop, ceil),
			})
		}
	}
	return regs
}

// compareWidePairs applies the WidePairFactor gate: for every
// baseline pair "<name>" / "<name>Wide" present in both reports, the
// current run's wide-over-scalar ns/op ratio may not exceed the
// baseline's ratio by more than the factor. Absolute ns/op gates have
// already run; this catches the wide engine quietly losing ground
// relative to the scalar walk while both stay inside the loose
// absolute bound.
func compareWidePairs(base *Report, curByName map[string]*Benchmark, opts CompareOptions) []Regression {
	baseByName := make(map[string]*Benchmark, len(base.Benchmarks))
	for i := range base.Benchmarks {
		b := &base.Benchmarks[i]
		baseByName[b.Name] = b
	}
	var regs []Regression
	for i := range base.Benchmarks {
		bw := &base.Benchmarks[i]
		scalar, ok := strings.CutSuffix(bw.Name, "Wide")
		if !ok || scalar == "" {
			continue
		}
		bs := baseByName[scalar]
		nw, ns := curByName[bw.Name], curByName[scalar]
		if bs == nil || nw == nil || ns == nil ||
			bs.NsPerOp <= 0 || bw.NsPerOp <= 0 || ns.NsPerOp <= 0 || nw.NsPerOp <= 0 {
			continue // missing members were already reported
		}
		baseRatio := bw.NsPerOp / bs.NsPerOp
		curRatio := nw.NsPerOp / ns.NsPerOp
		if curRatio > baseRatio*opts.WidePairFactor {
			regs = append(regs, Regression{
				Benchmark: bw.Name,
				Metric:    "ns/op vs " + scalar,
				Base:      baseRatio,
				New:       curRatio,
				Reason: fmt.Sprintf("wide/scalar ratio %.3f vs baseline %.3f, limit %.2fx",
					curRatio, baseRatio, opts.WidePairFactor),
			})
		}
	}
	return regs
}

// FormatRegressions renders the violations as a readable block, one
// line per regression.
func FormatRegressions(regs []Regression) string {
	if len(regs) == 0 {
		return "no regressions"
	}
	var sb strings.Builder
	for _, r := range regs {
		sb.WriteString("  REGRESSION ")
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
