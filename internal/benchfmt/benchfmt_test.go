package benchfmt

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig3Correlation    	       1	 760883453 ns/op	         0.9841 correlation
BenchmarkTable1Optimization-8 	       2	1006744326 ns/op	         3.653 %U-decrease
BenchmarkAblationVectors/N=10000-8  	       5	   3972113 ns/op	 1067904 B/op	      39 allocs/op
BenchmarkIntroTrend 	1000000	      1049 ns/op	         9.022 orders-of-magnitude
some unrelated chatter
PASS
ok  	repro	17.314s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "repro" {
		t.Errorf("header = %q %q %q", rep.Goos, rep.Goarch, rep.Pkg)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "Fig3Correlation" || b.Iterations != 1 || b.NsPerOp != 760883453 {
		t.Errorf("bench 0 = %+v", b)
	}
	if b.Metrics["correlation"] != 0.9841 {
		t.Errorf("correlation metric = %v", b.Metrics)
	}
	if rep.Benchmarks[1].Name != "Table1Optimization" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", rep.Benchmarks[1].Name)
	}
	sub := rep.Benchmarks[2]
	if sub.Name != "AblationVectors/N=10000" {
		t.Errorf("sub-bench name = %q", sub.Name)
	}
	if sub.Metrics["B/op"] != 1067904 || sub.Metrics["allocs/op"] != 39 {
		t.Errorf("benchmem metrics = %v", sub.Metrics)
	}
	if rep.Benchmarks[3].Iterations != 1000000 {
		t.Errorf("iterations = %d", rep.Benchmarks[3].Iterations)
	}
}

func TestParseIgnoresMalformed(t *testing.T) {
	rep, err := Parse(strings.NewReader("BenchmarkBroken abc ns/op\nBenchmarkAlsoBroken\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("malformed lines parsed: %+v", rep.Benchmarks)
	}
}
