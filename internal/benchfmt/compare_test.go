package benchfmt

import (
	"strings"
	"testing"
)

func report(benchmarks ...Benchmark) *Report {
	return &Report{Benchmarks: benchmarks}
}

func bench(name string, ns float64, metrics map[string]float64) Benchmark {
	return Benchmark{Name: name, FullName: "Benchmark" + name, Iterations: 1, NsPerOp: ns, Metrics: metrics}
}

func TestCompareClean(t *testing.T) {
	base := report(
		bench("Fig3Correlation", 1e9, map[string]float64{"correlation": 0.9841}),
		bench("Table1Optimization", 2e9, map[string]float64{"%U-decrease": 3.653}),
	)
	cur := report(
		// Faster and bit-identical metrics: clean.
		bench("Fig3Correlation", 4e8, map[string]float64{"correlation": 0.9841}),
		bench("Table1Optimization", 1.9e9, map[string]float64{"%U-decrease": 3.653}),
		// Extra benchmarks in the new run never fail.
		bench("NewSuite", 1e6, nil),
	)
	if regs := Compare(base, cur, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("clean run flagged: %v", regs)
	}
}

func TestCompareMetricDrift(t *testing.T) {
	base := report(bench("Fig3Correlation", 1e9, map[string]float64{"correlation": 0.9841}))
	cur := report(bench("Fig3Correlation", 1e9, map[string]float64{"correlation": 0.9000}))
	regs := Compare(base, cur, CompareOptions{})
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	r := regs[0]
	if r.Benchmark != "Fig3Correlation" || r.Metric != "correlation" {
		t.Fatalf("unexpected regression %+v", r)
	}
	// Within tolerance passes.
	cur2 := report(bench("Fig3Correlation", 1e9, map[string]float64{"correlation": 0.9840}))
	if regs := Compare(base, cur2, CompareOptions{MetricTol: 0.005}); len(regs) != 0 {
		t.Fatalf("0.01%% drift flagged at 0.5%% tolerance: %v", regs)
	}
}

func TestCompareNsRegression(t *testing.T) {
	base := report(bench("Fig3Correlation", 1e9, nil))
	// 2.4x slower: inside the loose 2.5x bound.
	if regs := Compare(base, report(bench("Fig3Correlation", 2.4e9, nil)), CompareOptions{}); len(regs) != 0 {
		t.Fatalf("2.4x flagged under 2.5x bound: %v", regs)
	}
	// 3x slower: fails.
	regs := Compare(base, report(bench("Fig3Correlation", 3e9, nil)), CompareOptions{})
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("3x slowdown not flagged: %v", regs)
	}
}

func TestCompareMissing(t *testing.T) {
	base := report(
		bench("Fig3Correlation", 1e9, map[string]float64{"correlation": 0.9841}),
		bench("Gone", 1e6, nil),
	)
	cur := report(bench("Fig3Correlation", 1e9, map[string]float64{"B/op": 100}))
	regs := Compare(base, cur, CompareOptions{SkipMemMetrics: true})
	// Two violations: the Gone benchmark vanished, and the correlation
	// metric vanished from Fig3Correlation.
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %v", len(regs), regs)
	}
	out := FormatRegressions(regs)
	if !strings.Contains(out, "Gone") || !strings.Contains(out, "correlation") {
		t.Fatalf("formatted output missing pieces:\n%s", out)
	}
}

func TestCompareSkipsMemMetrics(t *testing.T) {
	base := report(bench("X", 1e6, map[string]float64{"B/op": 1000, "allocs/op": 10}))
	cur := report(bench("X", 1e6, map[string]float64{"B/op": 9000, "allocs/op": 90}))
	if regs := Compare(base, cur, CompareOptions{SkipMemMetrics: true}); len(regs) != 0 {
		t.Fatalf("mem metrics flagged despite SkipMemMetrics: %v", regs)
	}
	if regs := Compare(base, cur, CompareOptions{SkipMemMetrics: false}); len(regs) != 2 {
		t.Fatalf("mem metrics not checked when enabled: %v", regs)
	}
}

func TestCompareAllocFactor(t *testing.T) {
	base := report(bench("X", 1e6, map[string]float64{"allocs/op": 10, "B/op": 1000}))
	// 9x more allocations under SkipMemMetrics alone: invisible.
	cur := report(bench("X", 1e6, map[string]float64{"allocs/op": 90, "B/op": 99000}))
	if regs := Compare(base, cur, CompareOptions{SkipMemMetrics: true}); len(regs) != 0 {
		t.Fatalf("skip-only run flagged: %v", regs)
	}
	// With the alloc gate the 9x blowup fails; B/op stays exempt.
	regs := Compare(base, cur, CompareOptions{SkipMemMetrics: true, AllocFactor: 8})
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("alloc blowup not flagged exactly once: %v", regs)
	}
	// Growth inside the factor passes (worker-count variation).
	cur2 := report(bench("X", 1e6, map[string]float64{"allocs/op": 40, "B/op": 4000}))
	if regs := Compare(base, cur2, CompareOptions{SkipMemMetrics: true, AllocFactor: 8}); len(regs) != 0 {
		t.Fatalf("4x alloc growth flagged under 8x bound: %v", regs)
	}
}

func TestCompareWidePairs(t *testing.T) {
	// Baseline: wide runs at 0.5x the scalar time.
	base := report(bench("Susc", 1e9, nil), bench("SuscWide", 5e8, nil))
	// Both absolute times within the loose 2.5x bound (scalar got
	// faster, wide 2.4x slower), but the wide engine slid from 0.5x to
	// 1.5x of scalar — past the 1.25 ratio limit.
	cur := report(bench("Susc", 8e8, nil), bench("SuscWide", 1.2e9, nil))
	regs := Compare(base, cur, CompareOptions{})
	if len(regs) != 1 || regs[0].Benchmark != "SuscWide" || regs[0].Metric != "ns/op vs Susc" {
		t.Fatalf("pair drift not flagged exactly once: %v", regs)
	}
	// A uniformly slower machine keeps the ratio: clean.
	cur2 := report(bench("Susc", 2e9, nil), bench("SuscWide", 1e9, nil))
	if regs := Compare(base, cur2, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("ratio-preserving slowdown flagged: %v", regs)
	}
}

func TestCompareMemCeilings(t *testing.T) {
	ceil := map[string]float64{"Compile1M": 2e9}
	// Under the ceiling: clean, even with an empty baseline.
	cur := report(bench("Compile1M", 1e9, map[string]float64{"B/op": 1.5e9, "allocs/op": 100}))
	if regs := Compare(report(), cur, CompareOptions{MemCeilingsB: ceil}); len(regs) != 0 {
		t.Fatalf("under-ceiling run flagged: %v", regs)
	}
	// Over the ceiling: fails.
	cur = report(bench("Compile1M", 1e9, map[string]float64{"B/op": 2.5e9}))
	regs := Compare(report(), cur, CompareOptions{MemCeilingsB: ceil})
	if len(regs) != 1 || regs[0].Benchmark != "Compile1M" || regs[0].Metric != "B/op" {
		t.Fatalf("over-ceiling run not flagged: %v", regs)
	}
	// Missing benchmark or missing B/op metric: also violations — a
	// ceiling that stops being measured must not pass silently.
	if regs := Compare(report(), report(), CompareOptions{MemCeilingsB: ceil}); len(regs) != 1 {
		t.Fatalf("missing benchmark not flagged: %v", regs)
	}
	cur = report(bench("Compile1M", 1e9, nil))
	if regs := Compare(report(), cur, CompareOptions{MemCeilingsB: ceil}); len(regs) != 1 {
		t.Fatalf("missing B/op not flagged: %v", regs)
	}
}
