// Package charlib builds and serves the SPICE-characterized lookup
// tables at the heart of ASERTA: "A SPICE look-up table is constructed
// for generated glitch width ... look-up tables are also constructed
// for delays, static energies, dynamic energies, output ramp and gate
// input capacitances for different types of gates, fan-ins, sizes,
// channel lengths, VDDs, Vths ... and load capacitances."
//
// Characterization drives the internal/spice transient simulator over
// a parameter grid once, storing results in internal/lut tables that
// are then interpolated during analysis and optimization. Libraries
// can be cached to JSON.
package charlib

import (
	"fmt"

	"repro/internal/ckt"
	"repro/internal/devmodel"
	"repro/internal/spice"
)

// Cell is one concrete assignable cell: a gate class plus the paper's
// four design variables.
type Cell struct {
	Type  ckt.GateType
	Fanin int
	spice.Params
}

// Class identifies a characterization class: gate function + fanin.
type Class struct {
	Type  ckt.GateType
	Fanin int
}

// String implements fmt.Stringer ("NAND2", "INV", ...).
func (cl Class) String() string {
	if cl.Type == ckt.Not {
		return "INV"
	}
	if cl.Type == ckt.Buf {
		return "BUF"
	}
	return fmt.Sprintf("%s%d", cl.Type, cl.Fanin)
}

// ClassOf returns the characterization class of a gate.
func ClassOf(g *ckt.Gate) Class {
	return Class{Type: g.Type, Fanin: len(g.Fanin)}
}

// numTransistors returns the transistor count of the class's static
// CMOS implementation (used by the area model).
func (cl Class) numTransistors() int {
	switch cl.Type {
	case ckt.Not:
		return 2
	case ckt.Buf:
		return 4
	case ckt.Nand, ckt.Nor:
		return 2 * cl.Fanin
	case ckt.And, ckt.Or:
		return 2*cl.Fanin + 2
	case ckt.Xor, ckt.Xnor:
		return 8 * (cl.Fanin - 1)
	}
	return 2 * cl.Fanin
}

// Area returns the cell's active-area metric in units of
// (Wbase × Lmin): transistor count × relative width × relative length.
// This is the layout-area term of the Eq. 5 cost.
func (c Cell) Area(tech *devmodel.Tech) float64 {
	cl := Class{Type: c.Type, Fanin: c.Fanin}
	return float64(cl.numTransistors()) * c.Size * (c.L / tech.Lmin)
}

// FluxWeight returns the paper's Z_i of Eq. 3: the strike-collection
// weight of the gate. Particle flux is collected by the drain
// junctions, whose area scales with transistor count and gate width
// ("size") but not with channel length, so the length ratio is
// deliberately absent here (unlike Area).
func (c Cell) FluxWeight() float64 {
	cl := Class{Type: c.Type, Fanin: c.Fanin}
	return float64(cl.numTransistors()) * c.Size
}
