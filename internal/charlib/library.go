package charlib

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/ckt"
	"repro/internal/devmodel"
	"repro/internal/lut"
	"repro/internal/spice"
)

// QInjDefault is the paper's fixed injected charge: "for simplicity
// ASERTA assumes a fixed amount of injected charge" — 16 fC, the value
// used for Fig. 1.
const QInjDefault = 16e-15

// Library is a characterized cell library: lazily filled lookup tables
// per gate class over the Grid axes, plus analytic capacitance, energy
// and area models.
type Library struct {
	Tech *devmodel.Tech
	Grid Grid
	// QInj is the strike charge used for the glitch-generation table.
	QInj float64

	// classes holds one singleflight entry per gate class: the first
	// caller to request an uncharacterized class becomes the leader and
	// characterizes it outside the map lock; concurrent callers for the
	// SAME class block on the entry's ready channel, while callers for
	// OTHER classes proceed independently. This is what lets a serving
	// tier share one library across many simultaneous requests with
	// exactly one characterization per class.
	mu      sync.RWMutex
	classes map[Class]*classEntry
	cfg     charConfig
	// charCount counts characterizeClass executions (not cache hits) —
	// the observable a server exports as its cache-miss metric and the
	// concurrency tests assert on.
	charCount atomic.Int64

	// evalMu guards the interpolation memo below. Optimization
	// re-evaluates the same (cell, load) points thousands of times —
	// every SERTOPT cost evaluation re-walks the same discrete cell
	// menu — so the 5-D multilinear interpolations are cached behind a
	// small read-mostly map.
	evalMu  sync.RWMutex
	delayC  map[lutKey]float64
	rampC   map[lutKey]float64
	glitchC map[lutKey]float64
	// capC/selfC/leakC memoize the analytic cell properties
	// (InputCap/SelfCap/StaticPower). Each is a pure function of the
	// cell identity, but computing one builds a transistor network —
	// and strike.GateLoads asks for an input capacitance per fanout
	// edge, which made these queries the dominant cost of a warm
	// analysis before they were cached.
	capC  map[Cell]float64
	selfC map[Cell]float64
	leakC map[Cell]float64
}

// lutKey identifies one memoized table query: the full cell identity
// plus the load capacitance it was evaluated at.
type lutKey struct {
	cell Cell
	load float64
}

// classEntry is one singleflight slot: ready is closed once ct/err are
// final.
type classEntry struct {
	ready chan struct{}
	ct    *classTables
	err   error
}

// doneEntry wraps already-final tables (Load, tests) in a closed entry.
func doneEntry(ct *classTables) *classEntry {
	e := &classEntry{ready: make(chan struct{}), ct: ct}
	close(e.ready)
	return e
}

// NewLibrary creates an empty library over the given grid;
// characterization happens on first use of each gate class.
func NewLibrary(tech *devmodel.Tech, g Grid) *Library {
	return &Library{
		Tech:    tech,
		Grid:    g,
		QInj:    QInjDefault,
		classes: make(map[Class]*classEntry),
		cfg:     defaultCharConfig(),
		delayC:  make(map[lutKey]float64),
		rampC:   make(map[lutKey]float64),
		glitchC: make(map[lutKey]float64),
		capC:    make(map[Cell]float64),
		selfC:   make(map[Cell]float64),
		leakC:   make(map[Cell]float64),
	}
}

// tables returns (characterizing on demand) the class tables.
// Concurrent callers for one uncharacterized class coalesce onto a
// single characterization; callers for distinct classes run in
// parallel.
func (l *Library) tables(cl Class) (*classTables, error) {
	l.mu.RLock()
	e, ok := l.classes[cl]
	l.mu.RUnlock()
	if !ok {
		l.mu.Lock()
		e, ok = l.classes[cl]
		if !ok {
			e = &classEntry{ready: make(chan struct{})}
			l.classes[cl] = e
			l.mu.Unlock()
			// Leader: characterize outside every lock so other classes
			// (and table queries on ready classes) stay unblocked. The
			// entry is finalized in a defer so that even a panic inside
			// characterization releases the waiters instead of wedging
			// the class forever.
			l.charCount.Add(1)
			func() {
				defer func() {
					if r := recover(); r != nil {
						e.err = fmt.Errorf("charlib: characterize %v: panic: %v", cl, r)
					}
					close(e.ready)
				}()
				ct, err := characterizeClass(l.Tech, cl, l.Grid, l.QInj, l.cfg)
				if err != nil {
					e.err = fmt.Errorf("charlib: characterize %v: %v", cl, err)
				} else {
					e.ct = ct
				}
			}()
			return e.ct, e.err
		}
		l.mu.Unlock()
	}
	<-e.ready
	return e.ct, e.err
}

// Characterizations reports how many class characterizations this
// library has executed (coalesced concurrent requests count once).
func (l *Library) Characterizations() int64 { return l.charCount.Load() }

// CharacterizedClasses reports the number of classes whose tables are
// resident (finished or in flight).
func (l *Library) CharacterizedClasses() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.classes)
}

// memoEval serves a table interpolation through the given cache.
func (l *Library) memoEval(cache map[lutKey]float64, pick func(*classTables) *lut.Table, c Cell, load float64) (float64, error) {
	k := lutKey{cell: c, load: load}
	l.evalMu.RLock()
	v, ok := cache[k]
	l.evalMu.RUnlock()
	if ok {
		return v, nil
	}
	ct, err := l.tables(Class{Type: c.Type, Fanin: c.Fanin})
	if err != nil {
		return 0, err
	}
	v, err = pick(ct).Eval(c.Size, c.L, c.VDD, c.Vth, load)
	if err != nil {
		return 0, err
	}
	l.evalMu.Lock()
	cache[k] = v
	l.evalMu.Unlock()
	return v, nil
}

// Precharacterize characterizes the given classes up front (e.g. all
// classes appearing in a circuit) so later queries never block.
func (l *Library) Precharacterize(classes []Class) error {
	return l.PrecharacterizeContext(context.Background(), classes)
}

// PrecharacterizeContext is Precharacterize with cancellation checks
// between classes. A characterization already in flight is not
// interrupted (another request owns it); cancellation takes effect at
// the next class boundary.
func (l *Library) PrecharacterizeContext(ctx context.Context, classes []Class) error {
	for _, cl := range classes {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := l.tables(cl); err != nil {
			return err
		}
	}
	return ctx.Err()
}

// CircuitClasses lists the distinct gate classes used by a circuit.
// Frame sources — primary inputs and DFF outputs — carry no
// characterized cell: flops are modeled as latch boundaries (a fixed
// D-pin load and a latching window), not as combinational cells, so a
// sequential circuit characterizes exactly the classes of its
// combinational frame.
func CircuitClasses(c *ckt.Circuit) []Class {
	seen := make(map[Class]bool)
	var out []Class
	for _, g := range c.Gates {
		if g.Type.IsSource() {
			continue
		}
		cl := ClassOf(g)
		if !seen[cl] {
			seen[cl] = true
			out = append(out, cl)
		}
	}
	return out
}

// Delay interpolates the cell's propagation delay under the given load.
func (l *Library) Delay(c Cell, load float64) (float64, error) {
	return l.memoEval(l.delayC, func(ct *classTables) *lut.Table { return ct.Delay }, c, load)
}

// OutputRamp interpolates the cell's output 10–90% transition time.
func (l *Library) OutputRamp(c Cell, load float64) (float64, error) {
	return l.memoEval(l.rampC, func(ct *classTables) *lut.Table { return ct.Ramp }, c, load)
}

// GlitchGen interpolates the glitch width generated at the cell output
// by the library's strike charge under the given load.
func (l *Library) GlitchGen(c Cell, load float64) (float64, error) {
	return l.memoEval(l.glitchC, func(ct *classTables) *lut.Table { return ct.Glitch }, c, load)
}

// GlitchGenAt interpolates the glitch width generated by an arbitrary
// injected charge q (C). It requires the grid's charge axis
// (Grid.Charges); without it only the fixed-charge table exists and an
// error is returned — the paper's stated future-work extension, so the
// capability is explicit rather than silently approximated.
func (l *Library) GlitchGenAt(c Cell, load, q float64) (float64, error) {
	ct, err := l.tables(Class{Type: c.Type, Fanin: c.Fanin})
	if err != nil {
		return 0, err
	}
	if ct.GlitchQ == nil {
		return 0, fmt.Errorf("charlib: library has no charge axis (set Grid.Charges); class %v", Class{Type: c.Type, Fanin: c.Fanin})
	}
	return ct.GlitchQ.Eval(c.Size, c.L, c.VDD, c.Vth, load, q)
}

// HasChargeAxis reports whether GlitchGenAt is available.
func (l *Library) HasChargeAxis() bool { return len(l.Grid.Charges) > 0 }

// memoCell serves a pure per-cell property through the given cache.
func (l *Library) memoCell(cache map[Cell]float64, compute func() (float64, error), c Cell) (float64, error) {
	l.evalMu.RLock()
	v, ok := cache[c]
	l.evalMu.RUnlock()
	if ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		return 0, err
	}
	l.evalMu.Lock()
	cache[c] = v
	l.evalMu.Unlock()
	return v, nil
}

// InputCap returns the capacitance one input pin of the cell presents
// to its driver.
func (l *Library) InputCap(c Cell) (float64, error) {
	return l.memoCell(l.capC, func() (float64, error) {
		return spice.CellInputCap(l.Tech, c.Type, c.Fanin, c.Params)
	}, c)
}

// SelfCap returns the cell's output diffusion capacitance.
func (l *Library) SelfCap(c Cell) (float64, error) {
	return l.memoCell(l.selfC, func() (float64, error) {
		return spice.CellSelfCap(l.Tech, c.Type, c.Fanin, c.Params)
	}, c)
}

// DynEnergyPerTransition returns the CV² energy of one output swing
// under the given external load.
func (l *Library) DynEnergyPerTransition(c Cell, load float64) (float64, error) {
	self, err := l.SelfCap(c)
	if err != nil {
		return 0, err
	}
	return (self + load) * c.VDD * c.VDD, nil
}

// StaticPower returns the cell's leakage power (W).
func (l *Library) StaticPower(c Cell) (float64, error) {
	leak, err := l.memoCell(l.leakC, func() (float64, error) {
		return spice.CellLeakage(l.Tech, c.Type, c.Fanin, c.Params)
	}, c)
	if err != nil {
		return 0, err
	}
	return leak * c.VDD, nil
}

// Area returns the cell area metric.
func (l *Library) Area(c Cell) float64 { return c.Area(l.Tech) }

// Menu enumerates the discrete cells available for a gate class during
// SERTOPT matching: the cross product of the grid's sizes and lengths
// with the designer-chosen VDD and Vth menus (paper §5: "the values
// and numbers of VDDs and Vths to be used is a design variable").
func (l *Library) Menu(cl Class, vdds, vths []float64, maxSize float64) []Cell {
	var cells []Cell
	for _, sz := range l.Grid.Sizes {
		if maxSize > 0 && sz > maxSize {
			continue
		}
		for _, ln := range l.Grid.Lengths {
			for _, vdd := range vdds {
				for _, vth := range vths {
					cells = append(cells, Cell{
						Type:   cl.Type,
						Fanin:  cl.Fanin,
						Params: spice.Params{Size: sz, L: ln, VDD: vdd, Vth: vth},
					})
				}
			}
		}
	}
	return cells
}

// libraryJSON is the serialized form of a characterized library.
type libraryJSON struct {
	Grid    Grid                    `json:"grid"`
	QInj    float64                 `json:"q_inj"`
	Classes map[string]*classTables `json:"classes"`
}

// Save writes the characterized tables as JSON (the technology is not
// serialized; Load re-attaches one). Classes whose characterization is
// still in flight are waited for; failed classes are skipped.
func (l *Library) Save(w io.Writer) error {
	l.mu.RLock()
	entries := make(map[Class]*classEntry, len(l.classes))
	for cl, e := range l.classes {
		entries[cl] = e
	}
	l.mu.RUnlock()
	lj := libraryJSON{Grid: l.Grid, QInj: l.QInj, Classes: make(map[string]*classTables)}
	for cl, e := range entries {
		<-e.ready
		if e.err == nil && e.ct != nil {
			lj.Classes[cl.String()] = e.ct
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(lj)
}

// Load reads a library saved by Save, attaching technology tech.
func Load(r io.Reader, tech *devmodel.Tech) (*Library, error) {
	var lj libraryJSON
	if err := json.NewDecoder(r).Decode(&lj); err != nil {
		return nil, fmt.Errorf("charlib: load: %v", err)
	}
	l := NewLibrary(tech, lj.Grid)
	l.QInj = lj.QInj
	for name, ct := range lj.Classes {
		cl, err := parseClassName(name)
		if err != nil {
			return nil, err
		}
		l.classes[cl] = doneEntry(ct)
	}
	return l, nil
}

// parseClassName inverts Class.String ("NAND2" -> {Nand, 2}).
func parseClassName(s string) (Class, error) {
	if s == "INV" {
		return Class{Type: ckt.Not, Fanin: 1}, nil
	}
	if s == "BUF" {
		return Class{Type: ckt.Buf, Fanin: 1}, nil
	}
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) || i == 0 {
		return Class{}, fmt.Errorf("charlib: bad class name %q", s)
	}
	var fanin int
	if _, err := fmt.Sscanf(s[i:], "%d", &fanin); err != nil {
		return Class{}, fmt.Errorf("charlib: bad class name %q: %v", s, err)
	}
	gt, err := ckt.ParseGateType(s[:i])
	if err != nil {
		return Class{}, fmt.Errorf("charlib: bad class name %q: %v", s, err)
	}
	return Class{Type: gt, Fanin: fanin}, nil
}
