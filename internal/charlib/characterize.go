package charlib

import (
	"fmt"

	"repro/internal/ckt"
	"repro/internal/devmodel"
	"repro/internal/lut"
	"repro/internal/par"
	"repro/internal/spice"
)

// Grid defines the characterization axes. These correspond directly to
// the paper's table dimensions (sizes, channel lengths, VDDs, Vths,
// load capacitances).
type Grid struct {
	Sizes   []float64 // relative gate sizes (1 = 100 nm width)
	Lengths []float64 // channel lengths (m)
	VDDs    []float64 // supply voltages (V)
	Vths    []float64 // threshold voltages (V)
	Loads   []float64 // load capacitances (F)
	// Charges optionally adds a sixth axis to the glitch-generation
	// table: injected charge (C). The paper fixed the charge at 16 fC
	// and noted "Future versions of ASERTA will have look-up tables
	// for different amounts of injected charge" — this implements that
	// extension (see Library.GlitchGenAt and aserta's charge spectrum).
	Charges []float64
}

// DefaultGrid covers the paper's design space: sizes up to 8x, the
// five channel lengths SERTOPT may assign (70/100/150/250/300 nm), the
// paper's supply menu and threshold menu, and load capacitances
// spanning minimum-size to heavily loaded gates.
func DefaultGrid() Grid {
	return Grid{
		Sizes:   []float64{1, 2, 4, 8},
		Lengths: []float64{70e-9, 100e-9, 150e-9, 250e-9, 300e-9},
		VDDs:    []float64{0.8, 1.0, 1.2},
		Vths:    []float64{0.1, 0.2, 0.3},
		Loads:   []float64{0.1e-15, 0.4e-15, 1.2e-15, 4e-15},
	}
}

// CoarseGrid is a small grid for tests and quick runs.
func CoarseGrid() Grid {
	return Grid{
		Sizes:   []float64{1, 4},
		Lengths: []float64{70e-9, 300e-9},
		VDDs:    []float64{0.8, 1.2},
		Vths:    []float64{0.1, 0.3},
		Loads:   []float64{0.2e-15, 2e-15},
	}
}

// classTables holds the characterized lookup tables of one gate class.
// Delay/Ramp/Glitch share the axes (size, L, VDD, Vth, load); GlitchQ,
// present only when the grid has a charge axis, adds injected charge
// as a sixth dimension.
type classTables struct {
	Delay   *lut.Table `json:"delay"`              // propagation delay (s)
	Ramp    *lut.Table `json:"ramp"`               // output 10-90% transition (s)
	Glitch  *lut.Table `json:"glitch"`             // generated glitch width (s) for QInj
	GlitchQ *lut.Table `json:"glitch_q,omitempty"` // width (s) vs injected charge
}

// charConfig collects simulator settings for characterization runs.
type charConfig struct {
	dt        float64
	inRamp    float64
	delayWin  float64
	glitchWin float64
}

func defaultCharConfig() charConfig {
	return charConfig{
		dt:        1e-12,
		inRamp:    20e-12,
		delayWin:  600e-12,
		glitchWin: 2000e-12,
	}
}

// gridPoints enumerates every index vector of the given axes in
// row-major order (last axis fastest), matching lut.Table layout.
func gridPoints(axes [][]float64) [][]int {
	total := 1
	for _, ax := range axes {
		total *= len(ax)
	}
	pts := make([][]int, 0, total)
	idx := make([]int, len(axes))
	for {
		pts = append(pts, append([]int(nil), idx...))
		d := len(idx) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < len(axes[d]) {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			return pts
		}
	}
}

// characterizeClass fills the three tables for one gate class by
// running the transient simulator at every grid point. Grid points are
// independent SPICE runs writing disjoint table slots, so they are
// fanned out over a worker pool; the tables that result are identical
// to a serial fill.
func characterizeClass(tech *devmodel.Tech, cl Class, g Grid, qInj float64, cfg charConfig) (*classTables, error) {
	mk := func() *lut.Table {
		return lut.MustNew(g.Sizes, g.Lengths, g.VDDs, g.Vths, g.Loads)
	}
	ct := &classTables{Delay: mk(), Ramp: mk(), Glitch: mk()}
	axes := [][]float64{g.Sizes, g.Lengths, g.VDDs, g.Vths, g.Loads}
	pts := gridPoints(axes)
	errs := make([]error, len(pts))
	par.For(len(pts), 0, func(pi int) {
		idx := pts[pi]
		p := spice.Params{Size: axes[0][idx[0]], L: axes[1][idx[1]], VDD: axes[2][idx[2]], Vth: axes[3][idx[3]]}
		load := axes[4][idx[4]]
		d, r, err := measureDelay(tech, cl, p, load, cfg)
		if err != nil {
			errs[pi] = err
			return
		}
		w, err := measureGlitchGen(tech, cl, p, load, qInj, cfg)
		if err != nil {
			errs[pi] = err
			return
		}
		ct.Delay.Set(idx, d)
		ct.Ramp.Set(idx, r)
		ct.Glitch.Set(idx, w)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if len(g.Charges) > 0 {
		gq := lut.MustNew(g.Sizes, g.Lengths, g.VDDs, g.Vths, g.Loads, g.Charges)
		qAxes := append(append([][]float64(nil), axes...), g.Charges)
		qPts := gridPoints(qAxes)
		qErrs := make([]error, len(qPts))
		par.For(len(qPts), 0, func(pi int) {
			idx := qPts[pi]
			p := spice.Params{Size: qAxes[0][idx[0]], L: qAxes[1][idx[1]], VDD: qAxes[2][idx[2]], Vth: qAxes[3][idx[3]]}
			w, err := measureGlitchGen(tech, cl, p, qAxes[4][idx[4]], qAxes[5][idx[5]], cfg)
			if err != nil {
				qErrs[pi] = err
				return
			}
			gq.Set(idx, w)
		})
		for _, err := range qErrs {
			if err != nil {
				return nil, err
			}
		}
		ct.GlitchQ = gq
	}
	return ct, nil
}

// dutCircuit builds the characterization fixture: fanin PIs feeding
// one device-under-test gate marked as PO.
func dutCircuit(cl Class) (*ckt.Circuit, int, error) {
	c := ckt.New("dut-" + cl.String())
	nIn := cl.Fanin
	if cl.Type == ckt.Not || cl.Type == ckt.Buf {
		nIn = 1
	}
	for i := 0; i < nIn; i++ {
		c.MustAddGate(fmt.Sprintf("i%d", i), ckt.Input)
	}
	dut, err := c.AddGate("dut", cl.Type)
	if err != nil {
		return nil, 0, err
	}
	for i := 0; i < nIn; i++ {
		id, _ := c.GateByName(fmt.Sprintf("i%d", i))
		if err := c.Connect(id, dut); err != nil {
			return nil, 0, err
		}
	}
	c.MarkPO(dut)
	if err := c.Validate(); err != nil {
		return nil, 0, err
	}
	return c, dut, nil
}

// nonControlling returns the DC level for side inputs so the switching
// input 0 is sensitized.
func nonControlling(t ckt.GateType, vdd float64) float64 {
	switch t {
	case ckt.And, ckt.Nand:
		return vdd
	case ckt.Or, ckt.Nor:
		return 0
	default: // XOR/XNOR and single-input gates: any value sensitizes
		return 0
	}
}

// measureDelay runs two transients (input rising and falling) and
// returns the mean propagation delay and mean output transition time.
func measureDelay(tech *devmodel.Tech, cl Class, p spice.Params, load float64, cfg charConfig) (float64, float64, error) {
	c, dut, err := dutCircuit(cl)
	if err != nil {
		return 0, 0, err
	}
	var dSum, rSum float64
	n := 0
	for _, rising := range []bool{true, false} {
		sim, err := spice.FromCircuit(tech, c, uniformParams(c, p), load)
		if err != nil {
			return 0, 0, err
		}
		v0, v1 := 0.0, p.VDD
		if !rising {
			v0, v1 = p.VDD, 0
		}
		sim.SetInput(0, spice.Ramp{V0: v0, V1: v1, T0: 50e-12, TRise: cfg.inRamp})
		for i := 1; i < len(c.Inputs()); i++ {
			sim.SetInput(i, spice.DC(nonControlling(cl.Type, p.VDD)))
		}
		sim.Settle()
		probes := []int{sim.GateNode(c.Inputs()[0]), sim.GateNode(dut)}
		waves := sim.Run(cfg.delayWin, cfg.dt, probes)
		d := spice.PropagationDelay(waves[0], waves[1], cfg.dt, p.VDD, p.VDD)
		r := spice.TransitionTime(waves[1], cfg.dt, p.VDD)
		if d > 0 && r > 0 {
			dSum += d
			rSum += r
			n++
		}
	}
	if n == 0 {
		// Cell cannot complete a swing within the window (extremely
		// weak corner); report the window as a saturated delay.
		return cfg.delayWin, cfg.delayWin, nil
	}
	return dSum / float64(n), rSum / float64(n), nil
}

// measureGlitchGen injects the strike charge at the DUT output for
// both output polarities and returns the mean resulting glitch width,
// reproducing the paper's generated-glitch-width table.
func measureGlitchGen(tech *devmodel.Tech, cl Class, p spice.Params, load, qInj float64, cfg charConfig) (float64, error) {
	c, dut, err := dutCircuit(cl)
	if err != nil {
		return 0, err
	}
	var sum float64
	n := 0
	for _, outHigh := range []bool{true, false} {
		sim, err := spice.FromCircuit(tech, c, uniformParams(c, p), load)
		if err != nil {
			return 0, err
		}
		bits := inputsForOutput(cl.Type, len(c.Inputs()), outHigh)
		sim.SetInputsLogic(bits, p.VDD)
		sim.Settle()
		q := qInj
		if outHigh {
			q = -qInj
		}
		node := sim.GateNode(dut)
		sim.AddInjection(&spice.Injection{Node: node, Q: q, T0: 20e-12})
		waves := sim.Run(cfg.glitchWin, cfg.dt, []int{node})
		sum += spice.GlitchWidth(waves[0], cfg.dt, p.VDD)
		n++
	}
	return sum / float64(n), nil
}

// inputsForOutput returns a DC input vector driving the gate output to
// the requested level.
func inputsForOutput(t ckt.GateType, nIn int, outHigh bool) []bool {
	bits := make([]bool, nIn)
	set := func(v bool) {
		for i := range bits {
			bits[i] = v
		}
	}
	switch t {
	case ckt.Not:
		bits[0] = !outHigh
	case ckt.Buf:
		bits[0] = outHigh
	case ckt.And:
		set(outHigh)
	case ckt.Nand:
		set(!outHigh)
	case ckt.Or:
		set(outHigh)
	case ckt.Nor:
		set(!outHigh)
	case ckt.Xor:
		// Parity of ones = outHigh.
		if outHigh {
			bits[0] = true
		}
	case ckt.Xnor:
		if !outHigh {
			bits[0] = true
		}
	}
	return bits
}

func uniformParams(c *ckt.Circuit, p spice.Params) []spice.Params {
	ps := make([]spice.Params, len(c.Gates))
	for i := range ps {
		ps[i] = p
	}
	return ps
}
