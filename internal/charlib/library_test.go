package charlib

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/ckt"
	"repro/internal/devmodel"
	"repro/internal/spice"
)

// testLib caches one coarsely characterized library across tests in
// this package (characterization runs the transient simulator).
var (
	testLibOnce sync.Once
	testLib     *Library
)

func lib(t testing.TB) *Library {
	testLibOnce.Do(func() {
		testLib = NewLibrary(devmodel.Tech70nm(), CoarseGrid())
	})
	return testLib
}

func nomCell(t ckt.GateType, fanin int) Cell {
	return Cell{Type: t, Fanin: fanin,
		Params: spice.Params{Size: 1, L: 70e-9, VDD: 1.0, Vth: 0.2}}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		{ckt.Not, 1}:  "INV",
		{ckt.Buf, 1}:  "BUF",
		{ckt.Nand, 2}: "NAND2",
		{ckt.Nor, 3}:  "NOR3",
		{ckt.Xor, 2}:  "XOR2",
	}
	for cl, want := range cases {
		if cl.String() != want {
			t.Errorf("%v.String() = %q, want %q", cl, cl.String(), want)
		}
		back, err := parseClassName(want)
		if err != nil || back != cl {
			t.Errorf("parseClassName(%q) = %v, %v", want, back, err)
		}
	}
	if _, err := parseClassName("NAND"); err == nil {
		t.Error("class without fanin accepted")
	}
	if _, err := parseClassName("123"); err == nil {
		t.Error("all-digits class accepted")
	}
	if _, err := parseClassName("FROB2"); err == nil {
		t.Error("unknown gate class accepted")
	}
}

func TestDelayPlausibleAndTrending(t *testing.T) {
	l := lib(t)
	c := nomCell(ckt.Not, 1)
	load := 0.5e-15
	d, err := l.Delay(c, load)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > 200e-12 {
		t.Fatalf("INV delay = %g s, implausible", d)
	}
	big := c
	big.Size = 4
	dBig, err := l.Delay(big, load)
	if err != nil {
		t.Fatal(err)
	}
	if dBig >= d {
		t.Errorf("bigger cell should be faster: size1=%g size4=%g", d, dBig)
	}
	long := c
	long.L = 300e-9
	dLong, err := l.Delay(long, load)
	if err != nil {
		t.Fatal(err)
	}
	if dLong <= d {
		t.Errorf("longer channel should be slower: L70=%g L300=%g", d, dLong)
	}
}

func TestGlitchGenTrends(t *testing.T) {
	// Fig. 1: factors that slow a gate (smaller size, longer L, lower
	// VDD, higher Vth) increase the generated glitch width.
	l := lib(t)
	load := 0.5e-15
	base := nomCell(ckt.Not, 1)
	wBase, err := l.GlitchGen(base, load)
	if err != nil {
		t.Fatal(err)
	}
	if wBase <= 0 {
		t.Fatal("no generated glitch at nominal cell")
	}
	check := func(name string, mod func(*Cell), wider bool) {
		c := base
		mod(&c)
		w, err := l.GlitchGen(c, load)
		if err != nil {
			t.Fatal(err)
		}
		if wider && w <= wBase {
			t.Errorf("%s: want wider glitch, got %g vs base %g", name, w, wBase)
		}
		if !wider && w >= wBase {
			t.Errorf("%s: want narrower glitch, got %g vs base %g", name, w, wBase)
		}
	}
	check("size up", func(c *Cell) { c.Size = 4 }, false)
	check("longer L", func(c *Cell) { c.L = 300e-9 }, true)
	check("lower VDD", func(c *Cell) { c.VDD = 0.8 }, true)
	check("higher Vth", func(c *Cell) { c.Vth = 0.3 }, true)
}

func TestInputCapGrowsWithSize(t *testing.T) {
	l := lib(t)
	c1 := nomCell(ckt.Nand, 2)
	c4 := c1
	c4.Size = 4
	a, err := l.InputCap(c1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.InputCap(c4)
	if err != nil {
		t.Fatal(err)
	}
	if b <= a {
		t.Errorf("input cap should grow with size: %g vs %g", a, b)
	}
}

func TestEnergyModels(t *testing.T) {
	l := lib(t)
	c := nomCell(ckt.Nand, 2)
	e, err := l.DynEnergyPerTransition(c, 1e-15)
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0 || e > 1e-12 {
		t.Fatalf("dynamic energy = %g J, implausible", e)
	}
	hiV := c
	hiV.VDD = 1.2
	e2, _ := l.DynEnergyPerTransition(hiV, 1e-15)
	if e2 <= e {
		t.Error("higher VDD must increase dynamic energy")
	}
	p, err := l.StaticPower(c)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 {
		t.Fatal("static power must be positive")
	}
	loVth := c
	loVth.Vth = 0.1
	p2, _ := l.StaticPower(loVth)
	if p2 <= p {
		t.Error("lower Vth must increase static power")
	}
}

func TestAreaModel(t *testing.T) {
	l := lib(t)
	inv := nomCell(ckt.Not, 1)
	nand3 := nomCell(ckt.Nand, 3)
	if l.Area(nand3) <= l.Area(inv) {
		t.Error("NAND3 must be larger than INV")
	}
	big := inv
	big.Size = 8
	if l.Area(big) != 8*l.Area(inv) {
		t.Error("area must scale linearly with size")
	}
}

func TestMenu(t *testing.T) {
	l := lib(t)
	cells := l.Menu(Class{Type: ckt.Nand, Fanin: 2}, []float64{0.8, 1.0}, []float64{0.2, 0.3}, 0)
	want := len(l.Grid.Sizes) * len(l.Grid.Lengths) * 2 * 2
	if len(cells) != want {
		t.Fatalf("menu has %d cells, want %d", len(cells), want)
	}
	capped := l.Menu(Class{Type: ckt.Nand, Fanin: 2}, []float64{1.0}, []float64{0.2}, 1)
	for _, c := range capped {
		if c.Size > 1 {
			t.Fatal("maxSize not respected")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	l := lib(t)
	// Force characterization of INV.
	if _, err := l.Delay(nomCell(ckt.Not, 1), 1e-15); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	l2, err := Load(&buf, devmodel.Tech70nm())
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := l.Delay(nomCell(ckt.Not, 1), 1e-15)
	d2, _ := l2.Delay(nomCell(ckt.Not, 1), 1e-15)
	if d1 != d2 {
		t.Fatalf("loaded library disagrees: %g vs %g", d1, d2)
	}
}

func TestCircuitClasses(t *testing.T) {
	c := ckt.New("t")
	a := c.MustAddGate("a", ckt.Input)
	b := c.MustAddGate("b", ckt.Input)
	g1 := c.MustAddGate("g1", ckt.Nand)
	c.MustConnect(a, g1)
	c.MustConnect(b, g1)
	g2 := c.MustAddGate("g2", ckt.Nand)
	c.MustConnect(a, g2)
	c.MustConnect(g1, g2)
	g3 := c.MustAddGate("g3", ckt.Not)
	c.MustConnect(g2, g3)
	c.MarkPO(g3)
	classes := CircuitClasses(c)
	if len(classes) != 2 {
		t.Fatalf("classes = %v, want NAND2+INV", classes)
	}
}
