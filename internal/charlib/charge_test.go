package charlib

import (
	"bytes"
	"testing"

	"repro/internal/ckt"
	"repro/internal/devmodel"
	"repro/internal/spice"
)

func TestChargeAxisCharacterizationAndRoundTrip(t *testing.T) {
	g := Grid{
		Sizes:   []float64{1},
		Lengths: []float64{70e-9},
		VDDs:    []float64{1.0},
		Vths:    []float64{0.2},
		Loads:   []float64{0.5e-15},
		Charges: []float64{4e-15, 16e-15},
	}
	l := NewLibrary(devmodel.Tech70nm(), g)
	if !l.HasChargeAxis() {
		t.Fatal("grid with charges should report a charge axis")
	}
	cell := Cell{Type: ckt.Not, Fanin: 1,
		Params: spice.Params{Size: 1, L: 70e-9, VDD: 1.0, Vth: 0.2}}
	w4, err := l.GlitchGenAt(cell, 0.5e-15, 4e-15)
	if err != nil {
		t.Fatal(err)
	}
	w16, err := l.GlitchGenAt(cell, 0.5e-15, 16e-15)
	if err != nil {
		t.Fatal(err)
	}
	if w16 <= w4 {
		t.Fatalf("glitch width must grow with charge: %g vs %g", w4, w16)
	}
	// The fixed-charge table and the charge-axis table must agree at
	// the library's own QInj.
	wFixed, err := l.GlitchGen(cell, 0.5e-15)
	if err != nil {
		t.Fatal(err)
	}
	if rel := (w16 - wFixed) / wFixed; rel > 0.05 || rel < -0.05 {
		t.Fatalf("charge-axis table at 16fC (%g) disagrees with fixed table (%g)", w16, wFixed)
	}

	// JSON round trip must preserve the charge table.
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	l2, err := Load(&buf, devmodel.Tech70nm())
	if err != nil {
		t.Fatal(err)
	}
	w16b, err := l2.GlitchGenAt(cell, 0.5e-15, 16e-15)
	if err != nil {
		t.Fatal(err)
	}
	if w16b != w16 {
		t.Fatalf("charge table lost in round trip: %g vs %g", w16b, w16)
	}
}

func TestPrecharacterize(t *testing.T) {
	l := NewLibrary(devmodel.Tech70nm(), CoarseGrid())
	classes := []Class{{Type: ckt.Not, Fanin: 1}, {Type: ckt.Nor, Fanin: 2}}
	if err := l.Precharacterize(classes); err != nil {
		t.Fatal(err)
	}
	// Subsequent queries must not error (tables exist).
	cell := Cell{Type: ckt.Nor, Fanin: 2,
		Params: spice.Params{Size: 1, L: 70e-9, VDD: 1.0, Vth: 0.2}}
	if _, err := l.Delay(cell, 1e-15); err != nil {
		t.Fatal(err)
	}
}
