package promtext

import (
	"runtime"
	"sort"

	"repro/internal/trace"
	"repro/serclient"
)

// shardLabels prepends a shard label when the instance has a name, so
// the same renderer serves a standalone process (no label), a named
// shard, and the router's per-shard re-exposition.
func shardLabels(shard string, extra ...Label) []Label {
	var ls []Label
	if shard != "" {
		ls = append(ls, Label{Name: "shard", Value: shard})
	}
	return append(ls, extra...)
}

// WriteShardMetrics renders one serd process's counters — the same
// snapshot GET /metrics serves as JSON — in exposition format. The
// router calls it once per scraped shard, so HELP/TYPE headers
// dedupe across calls on the shared Writer.
func WriteShardMetrics(w *Writer, m *serclient.MetricsResponse) {
	base := shardLabels(m.Shard)
	w.Gauge("serd_uptime_seconds", "Seconds since process start.", base, m.UptimeS)
	for _, ep := range sortedKeys(m.Requests) {
		w.Counter("serd_requests_total", "HTTP requests per endpoint.",
			shardLabels(m.Shard, Label{Name: "endpoint", Value: ep}), float64(m.Requests[ep]))
	}
	w.Counter("serd_errors_total", "Requests answered with a 4xx/5xx status.", base, float64(m.Errors))
	w.Gauge("serd_queue_depth", "Jobs waiting in the bounded queue.", base, float64(m.QueueDepth))
	w.Gauge("serd_jobs_running", "Jobs executing right now.", base, float64(m.JobsRunning))
	w.Gauge("serd_queue_workers", "Worker-pool size.", base, float64(m.QueueWorkers))
	w.Counter("serd_jobs_canceled_total", "Jobs canceled before completion.", base, float64(m.JobsCanceled))
	w.Counter("serd_jobs_retried_total", "Failed attempts re-enqueued for retry.", base, float64(m.JobsRetried))
	w.Counter("serd_jobs_recovered_total", "Jobs re-enqueued from the journal at startup.", base, float64(m.JobsRecovered))
	w.Counter("serd_requests_shed_total", "Submissions bounced with 429 (queue full).", base, float64(m.RequestsShed))
	w.Counter("serd_journal_errors_total", "Journal appends that failed after job acceptance.", base, float64(m.JournalErrors))
	w.Counter("serd_wide_lane_jobs_total", "Accepted jobs requesting a bit-parallel lane width above the 64-bit default.", base, float64(m.WideLaneJobs))
	w.Counter("serd_approx_jobs_total", "Accepted jobs that opted into the sampled Approx mode.", base, float64(m.ApproxJobs))
	w.Counter("serd_characterizations_total", "Cell-class characterizations executed (library cache misses).", base, float64(m.Characterizations))
	w.Counter("serd_lib_cache_hits_total", "Jobs served entirely from characterized tables.", base, float64(m.LibCacheHits))
	cc := m.CompiledCache
	w.Counter("serd_compiled_cache_hits_total", "Compiled-circuit cache hits.", base, float64(cc.Hits))
	w.Counter("serd_compiled_cache_misses_total", "Compiled-circuit cache misses.", base, float64(cc.Misses))
	w.Counter("serd_compiled_cache_evictions_total", "Compiled-circuit cache evictions.", base, float64(cc.Evictions))
	w.Gauge("serd_compiled_cache_hit_ratio", "Hits over lookups, 0 before any lookup.", base, cc.HitRate)
	w.Gauge("serd_compiled_cache_entries", "Compiled circuits currently cached.", base, float64(cc.Entries))
	w.Gauge("serd_compiled_cache_gates", "Gate records charged against the cache budget.", base, float64(cc.Gates))
	w.Gauge("serd_compiled_cache_gate_budget", "Gate-record capacity evictions enforce.", base, float64(cc.Budget))
	if ac := m.ArtifactCache; ac.Enabled {
		w.Counter("serd_artifact_hits_total", "Compiled circuits served from the on-disk artifact store.", base, float64(ac.Hits))
		w.Counter("serd_artifact_misses_total", "Artifact lookups that fell through to a fresh compile.", base, float64(ac.Misses))
		w.Counter("serd_artifact_saves_total", "Compiled artifacts written to disk.", base, float64(ac.Saves))
		w.Counter("serd_artifact_errors_total", "Corrupt or unwritable artifacts (each costs one recompile).", base, float64(ac.Errors))
		w.Counter("serd_artifact_bytes_mapped_total", "Bytes of artifact data mapped on hits.", base, float64(ac.BytesMapped))
	}
	for _, kind := range sortedLatKeys(m.LatencyMS) {
		ls := m.LatencyMS[kind]
		kl := shardLabels(m.Shard, Label{Name: "kind", Value: kind})
		w.Summary("serd_job_latency_ms",
			"Job latency quantiles in milliseconds over the recent-jobs window (process-local; never aggregate quantiles across shards).",
			kl, map[float64]float64{0.5: ls.P50, 0.99: ls.P99}, ls.Count)
		w.Gauge("serd_job_latency_window_max_ms", "Max job latency over the recent-jobs window.", kl, ls.Max)
		w.Gauge("serd_job_latency_lifetime_max_ms", "Max job latency since process start.", kl, ls.MaxLifetime)
	}
}

// WriteStageHistograms renders the process-global per-stage latency
// histograms collected by internal/trace.
func WriteStageHistograms(w *Writer, shard string, hists []trace.StageHist) {
	bounds := trace.HistBuckets()
	for _, h := range hists {
		w.Histogram("serd_stage_duration_seconds",
			"Pipeline stage latency (compile, sensitization, electrical, logical, reduce, ...).",
			shardLabels(shard, Label{Name: "stage", Value: h.Stage}), bounds, h.Buckets, h.SumSeconds)
	}
}

// WriteTraceCounters renders the global event counters collected by
// internal/trace (engine memo hits/misses and friends).
func WriteTraceCounters(w *Writer, shard string, ctrs []trace.CounterEvent) {
	for _, c := range ctrs {
		w.Counter("serd_trace_events_total", "Instrumentation event counts (engine compile/memo and friends).",
			shardLabels(shard, Label{Name: "event", Value: c.Name}), float64(c.Value))
	}
}

// WriteRuntime renders Go runtime health: goroutines, heap, GC.
func WriteRuntime(w *Writer, shard string) {
	base := shardLabels(shard)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w.Gauge("go_goroutines", "Live goroutines.", base, float64(runtime.NumGoroutine()))
	w.Gauge("go_memstats_heap_alloc_bytes", "Heap bytes currently allocated.", base, float64(ms.HeapAlloc))
	w.Gauge("go_memstats_heap_objects", "Live heap objects.", base, float64(ms.HeapObjects))
	w.Counter("go_memstats_alloc_bytes_total", "Cumulative bytes allocated on the heap.", base, float64(ms.TotalAlloc))
	w.Counter("go_gc_cycles_total", "Completed GC cycles.", base, float64(ms.NumGC))
	w.Counter("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", base, float64(ms.PauseTotalNs)/1e9)
}

func sortedKeys(m map[string]int64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedLatKeys(m map[string]serclient.LatencySummary) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
