// Package promtext hand-rolls the Prometheus text exposition format
// (version 0.0.4) — both directions, with no dependencies. The Writer
// renders the service's counters, gauges, summaries and histograms
// for GET /metrics?format=prometheus on shards and routers alike; the
// Parser validates exposition syntax and histogram consistency, and
// is what the CI scrape-smoke test runs against a live serd binary.
package promtext

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Label is one name="value" pair on a sample.
type Label struct {
	// Name is the label name ([a-zA-Z_][a-zA-Z0-9_]*).
	Name string
	// Value is the label value, escaped on output.
	Value string
}

// Writer accumulates one exposition document. HELP/TYPE headers are
// emitted once per metric family no matter how many label
// permutations sample it (the router renders the same family once per
// shard), as the format requires.
type Writer struct {
	b    strings.Builder
	seen map[string]bool
}

// NewWriter returns an empty exposition document builder.
func NewWriter() *Writer {
	return &Writer{seen: make(map[string]bool)}
}

// family emits the # HELP / # TYPE header the first time a metric
// family is sampled.
func (w *Writer) family(name, help, typ string) {
	if w.seen[name] {
		return
	}
	w.seen[name] = true
	fmt.Fprintf(&w.b, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&w.b, "# TYPE %s %s\n", name, typ)
}

// sample emits one sample line.
func (w *Writer) sample(name string, labels []Label, v float64) {
	w.b.WriteString(name)
	writeLabels(&w.b, labels)
	w.b.WriteByte(' ')
	w.b.WriteString(formatValue(v))
	w.b.WriteByte('\n')
}

// Counter emits one counter sample (HELP/TYPE on first use).
func (w *Writer) Counter(name, help string, labels []Label, v float64) {
	w.family(name, help, "counter")
	w.sample(name, labels, v)
}

// Gauge emits one gauge sample (HELP/TYPE on first use).
func (w *Writer) Gauge(name, help string, labels []Label, v float64) {
	w.family(name, help, "gauge")
	w.sample(name, labels, v)
}

// Summary emits one pre-computed quantile summary: a sample per
// (quantile, value) pair plus _count. The quantiles come from the
// service's own sliding windows; promtext does no estimation.
func (w *Writer) Summary(name, help string, labels []Label, quantiles map[float64]float64, count int64) {
	w.family(name, help, "summary")
	qs := make([]float64, 0, len(quantiles))
	for q := range quantiles {
		qs = append(qs, q)
	}
	sort.Float64s(qs)
	for _, q := range qs {
		ql := append(append([]Label{}, labels...), Label{Name: "quantile", Value: formatValue(q)})
		w.sample(name, ql, quantiles[q])
	}
	w.sample(name+"_count", labels, float64(count))
}

// Histogram emits one histogram: cumulative _bucket samples for every
// upper bound plus +Inf, then _sum and _count. counts holds the
// non-cumulative per-bucket observations, one longer than bounds
// (the final element is the +Inf bucket).
func (w *Writer) Histogram(name, help string, labels []Label, bounds []float64, counts []int64, sumSeconds float64) {
	w.family(name, help, "histogram")
	var cum int64
	for i, ub := range bounds {
		cum += counts[i]
		bl := append(append([]Label{}, labels...), Label{Name: "le", Value: formatValue(ub)})
		w.sample(name+"_bucket", bl, float64(cum))
	}
	cum += counts[len(bounds)]
	bl := append(append([]Label{}, labels...), Label{Name: "le", Value: "+Inf"})
	w.sample(name+"_bucket", bl, float64(cum))
	w.sample(name+"_sum", labels, sumSeconds)
	w.sample(name+"_count", labels, float64(cum))
}

// String returns the document rendered so far.
func (w *Writer) String() string { return w.b.String() }

// Bytes returns the document rendered so far.
func (w *Writer) Bytes() []byte { return []byte(w.b.String()) }

func writeLabels(b *strings.Builder, labels []Label) {
	if len(labels) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip form, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
