package promtext

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/serclient"
)

func TestWriterParserRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Counter("serd_errors_total", "Errors.", nil, 3)
	w.Gauge("serd_queue_depth", "Depth.", []Label{{Name: "shard", Value: "s0"}}, 7)
	w.Summary("serd_job_latency_ms", "Latency.", []Label{{Name: "kind", Value: "analyze"}},
		map[float64]float64{0.5: 12.5, 0.99: 80}, 41)
	w.Histogram("serd_stage_duration_seconds", "Stage latency.",
		[]Label{{Name: "stage", Value: "strike.electrical"}},
		[]float64{0.001, 0.01, 0.1}, []int64{2, 3, 0, 1}, 0.123)
	fams, err := Parse(w.String())
	if err != nil {
		t.Fatalf("parse of writer output failed: %v\n%s", err, w.String())
	}
	if f := fams["serd_errors_total"]; f == nil || f.Type != "counter" || f.Samples[0].Value != 3 {
		t.Fatalf("counter family mangled: %+v", fams["serd_errors_total"])
	}
	if f := fams["serd_queue_depth"]; f == nil || f.Samples[0].Labels["shard"] != "s0" {
		t.Fatalf("gauge labels mangled: %+v", fams["serd_queue_depth"])
	}
	sum := fams["serd_job_latency_ms"]
	if sum == nil || sum.Type != "summary" || len(sum.Samples) != 3 {
		t.Fatalf("summary mangled: %+v", sum)
	}
	h := fams["serd_stage_duration_seconds"]
	if h == nil || h.Type != "histogram" {
		t.Fatalf("histogram missing: %+v", h)
	}
	// 3 bounds + +Inf + _sum + _count
	if len(h.Samples) != 6 {
		t.Fatalf("histogram has %d samples, want 6", len(h.Samples))
	}
}

func TestWriterDedupesHeaders(t *testing.T) {
	w := NewWriter()
	w.Counter("x_total", "X.", []Label{{Name: "shard", Value: "a"}}, 1)
	w.Counter("x_total", "X.", []Label{{Name: "shard", Value: "b"}}, 2)
	if n := strings.Count(w.String(), "# TYPE x_total"); n != 1 {
		t.Fatalf("TYPE emitted %d times, want 1:\n%s", n, w.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	w := NewWriter()
	w.Gauge("g", "G.", []Label{{Name: "v", Value: "a\"b\\c\nd"}}, 1)
	fams, err := Parse(w.String())
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, w.String())
	}
	if got := fams["g"].Samples[0].Labels["v"]; got != "a\"b\\c\nd" {
		t.Fatalf("label round-trip got %q", got)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE":   "x_total 1\n",
		"bad type":             "# TYPE x frobnicator\n",
		"duplicate TYPE":       "# TYPE x counter\n# TYPE x counter\n",
		"bad metric name":      "# TYPE 9x counter\n9x 1\n",
		"bad value":            "# TYPE x counter\nx pancake\n",
		"unterminated labels":  "# TYPE x counter\nx{a=\"b\" 1\n",
		"bad escape":           "# TYPE x counter\nx{a=\"\\q\"} 1\n",
		"duplicate label":      "# TYPE x counter\nx{a=\"1\",a=\"2\"} 1\n",
		"histogram no +Inf":    "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram count skew": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",
		"histogram not cumulative": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
	}
	for name, doc := range cases {
		if _, err := Parse(doc); err == nil {
			t.Errorf("%s: parse accepted malformed document:\n%s", name, doc)
		}
	}
}

func TestParseAcceptsHistogramPerLabelSet(t *testing.T) {
	doc := "# TYPE h histogram\n" +
		"h_bucket{stage=\"a\",le=\"1\"} 1\nh_bucket{stage=\"a\",le=\"+Inf\"} 2\n" +
		"h_sum{stage=\"a\"} 0.5\nh_count{stage=\"a\"} 2\n" +
		"h_bucket{stage=\"b\",le=\"1\"} 0\nh_bucket{stage=\"b\",le=\"+Inf\"} 1\n" +
		"h_sum{stage=\"b\"} 0.1\nh_count{stage=\"b\"} 1\n"
	if _, err := Parse(doc); err != nil {
		t.Fatalf("multi-series histogram rejected: %v", err)
	}
}

func TestWriteShardMetricsParses(t *testing.T) {
	m := &serclient.MetricsResponse{
		Shard:    "s0",
		UptimeS:  12,
		Requests: map[string]int64{"analyze": 4, "metrics": 1},
		CompiledCache: serclient.CompiledCacheMetrics{
			Hits: 3, Misses: 1, HitRate: 0.75, Entries: 1, Gates: 100, Budget: 1000,
		},
		LatencyMS: map[string]serclient.LatencySummary{
			"analyze": {Count: 4, P50: 10, P99: 20, Max: 20, MaxLifetime: 33, Window: 512},
		},
	}
	w := NewWriter()
	WriteShardMetrics(w, m)
	trace.Observe("test.render", 0)
	WriteStageHistograms(w, "s0", trace.Histograms())
	trace.Count("test.render.event")
	WriteTraceCounters(w, "s0", trace.Counters())
	WriteRuntime(w, "s0")
	fams, err := Parse(w.String())
	if err != nil {
		t.Fatalf("shard exposition does not parse: %v\n%s", err, w.String())
	}
	for _, want := range []string{
		"serd_requests_total", "serd_compiled_cache_hits_total",
		"serd_job_latency_ms", "serd_job_latency_lifetime_max_ms",
		"serd_stage_duration_seconds", "serd_trace_events_total",
		"go_goroutines", "go_gc_cycles_total",
	} {
		if fams[want] == nil {
			t.Errorf("family %q missing from shard exposition", want)
		}
	}
	for _, s := range fams["serd_requests_total"].Samples {
		if s.Labels["shard"] != "s0" {
			t.Fatalf("sample missing shard label: %+v", s)
		}
	}
}
