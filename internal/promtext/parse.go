package promtext

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed sample line.
type Sample struct {
	// Name is the full sample name (including _bucket/_sum/_count
	// suffixes for histograms).
	Name string
	// Labels maps label name to unescaped value.
	Labels map[string]string
	// Value is the parsed sample value.
	Value float64
}

// Family is one parsed metric family: its metadata plus every sample
// belonging to it.
type Family struct {
	// Name is the family name from the # TYPE line.
	Name string
	// Help is the # HELP text, "" when absent.
	Help string
	// Type is counter, gauge, histogram, summary or untyped.
	Type string
	// Samples lists the family's samples in document order.
	Samples []Sample
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Parse validates a Prometheus text exposition document and returns
// its families keyed by name. It enforces the syntax rules a real
// scraper depends on — metric and label name grammar, TYPE before
// samples, no duplicate TYPE lines, parseable values — plus histogram
// consistency: every histogram series must have a +Inf bucket whose
// cumulative count equals its _count sample, with bucket counts
// non-decreasing in le order.
func Parse(doc string) (map[string]*Family, error) {
	fams := map[string]*Family{}
	typed := map[string]bool{}
	for ln, line := range strings.Split(doc, "\n") {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, lineNo, fams, typed); err != nil {
				return nil, err
			}
			continue
		}
		s, err := parseSample(line, lineNo)
		if err != nil {
			return nil, err
		}
		fam := familyOf(s.Name, fams)
		if fam == nil {
			return nil, fmt.Errorf("promtext: line %d: sample %q precedes its # TYPE line", lineNo, s.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	for _, f := range fams {
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

func parseComment(line string, lineNo int, fams map[string]*Family, typed map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !metricNameRe.MatchString(fields[2]) {
			return fmt.Errorf("promtext: line %d: malformed HELP line", lineNo)
		}
		f := ensureFamily(fields[2], fams)
		if len(fields) == 4 {
			f.Help = fields[3]
		}
	case "TYPE":
		if len(fields) != 4 || !metricNameRe.MatchString(fields[2]) {
			return fmt.Errorf("promtext: line %d: malformed TYPE line", lineNo)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("promtext: line %d: unknown metric type %q", lineNo, fields[3])
		}
		if typed[fields[2]] {
			return fmt.Errorf("promtext: line %d: duplicate TYPE for %q", lineNo, fields[2])
		}
		typed[fields[2]] = true
		f := ensureFamily(fields[2], fams)
		if len(f.Samples) > 0 {
			return fmt.Errorf("promtext: line %d: TYPE for %q after its samples", lineNo, fields[2])
		}
		f.Type = fields[3]
	}
	return nil
}

func ensureFamily(name string, fams map[string]*Family) *Family {
	f := fams[name]
	if f == nil {
		f = &Family{Name: name, Type: "untyped"}
		fams[name] = f
	}
	return f
}

// familyOf resolves a sample name to its family, honoring the
// histogram/summary child suffixes.
func familyOf(sample string, fams map[string]*Family) *Family {
	if f := fams[sample]; f != nil {
		return f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suf)
		if base == sample {
			continue
		}
		if f := fams[base]; f != nil && (f.Type == "histogram" || f.Type == "summary") {
			return f
		}
	}
	return nil
}

func parseSample(line string, lineNo int) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 {
		nameEnd = brace
	} else if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		nameEnd = sp
	} else {
		return s, fmt.Errorf("promtext: line %d: sample has no value", lineNo)
	}
	s.Name = rest[:nameEnd]
	if !metricNameRe.MatchString(s.Name) {
		return s, fmt.Errorf("promtext: line %d: bad metric name %q", lineNo, s.Name)
	}
	rest = rest[nameEnd:]
	if brace >= 0 {
		end, err := parseLabels(rest, lineNo, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	// An optional timestamp may follow the value.
	valStr, _, _ := strings.Cut(rest, " ")
	v, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("promtext: line %d: bad value %q", lineNo, valStr)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {name="value",...} block starting at s[0]=='{'
// and returns the index just past the closing brace.
func parseLabels(s string, lineNo int, out map[string]string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("promtext: line %d: unterminated label block", lineNo)
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("promtext: line %d: label without '='", lineNo)
		}
		name := s[i : i+eq]
		if !labelNameRe.MatchString(name) {
			return 0, fmt.Errorf("promtext: line %d: bad label name %q", lineNo, name)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("promtext: line %d: label value not quoted", lineNo)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("promtext: line %d: unterminated label value", lineNo)
			}
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("promtext: line %d: dangling escape", lineNo)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("promtext: line %d: bad escape \\%c", lineNo, s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := out[name]; dup {
			return 0, fmt.Errorf("promtext: line %d: duplicate label %q", lineNo, name)
		}
		out[name] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// checkHistogram verifies one histogram family's internal
// consistency, per distinct non-le label set: cumulative buckets
// non-decreasing, a +Inf bucket present, and _count equal to it.
func checkHistogram(f *Family) error {
	type series struct {
		buckets []Sample // in document order
		sum     *Sample
		count   *Sample
	}
	bySet := map[string]*series{}
	key := func(labels map[string]string) string {
		ks := make([]string, 0, len(labels))
		for k := range labels {
			if k == "le" {
				continue
			}
			ks = append(ks, k)
		}
		sort.Strings(ks)
		var b strings.Builder
		for _, k := range ks {
			fmt.Fprintf(&b, "%s=%q,", k, labels[k])
		}
		return b.String()
	}
	get := func(labels map[string]string) *series {
		k := key(labels)
		sr := bySet[k]
		if sr == nil {
			sr = &series{}
			bySet[k] = sr
		}
		return sr
	}
	for i := range f.Samples {
		s := f.Samples[i]
		sr := get(s.Labels)
		switch s.Name {
		case f.Name + "_bucket":
			sr.buckets = append(sr.buckets, s)
		case f.Name + "_sum":
			sr.sum = &f.Samples[i]
		case f.Name + "_count":
			sr.count = &f.Samples[i]
		default:
			return fmt.Errorf("promtext: histogram %q has stray sample %q", f.Name, s.Name)
		}
	}
	for k, sr := range bySet {
		if len(sr.buckets) == 0 || sr.count == nil || sr.sum == nil {
			return fmt.Errorf("promtext: histogram %q{%s} missing buckets, _sum or _count", f.Name, k)
		}
		var prev float64
		var inf *Sample
		lastLE := math.Inf(-1)
		for i := range sr.buckets {
			b := sr.buckets[i]
			le, err := parseValue(b.Labels["le"])
			if err != nil {
				return fmt.Errorf("promtext: histogram %q bucket has bad le %q", f.Name, b.Labels["le"])
			}
			if le <= lastLE {
				return fmt.Errorf("promtext: histogram %q buckets out of le order", f.Name)
			}
			lastLE = le
			if b.Value < prev {
				return fmt.Errorf("promtext: histogram %q bucket counts not cumulative", f.Name)
			}
			prev = b.Value
			if math.IsInf(le, 1) {
				inf = &sr.buckets[i]
			}
		}
		if inf == nil {
			return fmt.Errorf("promtext: histogram %q{%s} has no +Inf bucket", f.Name, k)
		}
		if inf.Value != sr.count.Value {
			return fmt.Errorf("promtext: histogram %q{%s}: +Inf bucket %v != count %v",
				f.Name, k, inf.Value, sr.count.Value)
		}
	}
	return nil
}
