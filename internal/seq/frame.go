package seq

import (
	"fmt"

	"repro/internal/ckt"
	"repro/internal/engine"
)

// Frame is the combinational frame of a sequential circuit: the same
// gate fabric with every flip-flop replaced by an Input pseudo-gate
// (its Q output is a frame source carrying the previous cycle's
// state) and every D-pin driver marked as an additional primary
// output (the value the flop will latch). Gate IDs are preserved —
// Comb.Gates[i] corresponds one-to-one with Seq.Gates[i] — so
// analysis results on the frame map straight back to the sequential
// netlist.
type Frame struct {
	// Seq is the original sequential circuit; Comb the derived
	// combinational frame.
	Seq  *ckt.Circuit
	Comb *ckt.Circuit
	// CC is the compiled artifact of Comb: built once per frame and
	// shared by the sensitization run, the electrical pass and every
	// strike source across all K cycles.
	CC *engine.CompiledCircuit
	// NumRealPOs is the count of genuine primary outputs; the first
	// NumRealPOs columns of Comb.Outputs() are exactly Seq.Outputs()
	// in order. The remaining columns are flop-capture taps.
	NumRealPOs int
	// FlopCols[fi] is the Comb.Outputs() column holding the D-pin
	// value of flop Seq.DFFs()[fi]. When a D pin is driven by a frame
	// source directly (a PI or another flop's Q — no combinational
	// logic in between), the column's PO gate is an Input pseudo-gate:
	// no strike can originate there, and its sensitization column is
	// identically zero, so such flops correctly capture nothing from
	// the electrical stage.
	FlopCols []int
}

// BuildFrame derives the combinational frame of c. Purely
// combinational circuits are legal inputs: the frame is then simply a
// structural copy.
func BuildFrame(c *ckt.Circuit) (*Frame, error) {
	comb := ckt.New(c.Name + "#frame")
	for _, g := range c.Gates {
		t := g.Type
		if t == ckt.DFF {
			t = ckt.Input
		}
		if _, err := comb.AddGate(g.Name, t); err != nil {
			return nil, fmt.Errorf("seq: frame of %q: %v", c.Name, err)
		}
	}
	for _, g := range c.Gates {
		if g.Type.IsSource() {
			continue // DFF D-pin edges cross the clock boundary: cut
		}
		for _, f := range g.Fanin {
			if err := comb.Connect(f, g.ID); err != nil {
				return nil, fmt.Errorf("seq: frame of %q: %v", c.Name, err)
			}
		}
	}
	for _, id := range c.Outputs() {
		comb.MarkPO(id)
	}
	flops := c.DFFs()
	fr := &Frame{
		Seq:        c,
		Comb:       comb,
		NumRealPOs: len(c.Outputs()),
		FlopCols:   make([]int, len(flops)),
	}
	for _, id := range flops {
		if n := len(c.Gates[id].Fanin); n != 1 {
			return nil, fmt.Errorf("seq: flop %q has %d D pins, want 1", c.Gates[id].Name, n)
		}
		comb.MarkPO(c.Gates[id].Fanin[0]) // no-op when already a PO
	}
	col := make(map[int]int, len(comb.Outputs()))
	for k, id := range comb.Outputs() {
		col[id] = k
	}
	for fi, id := range flops {
		fr.FlopCols[fi] = col[c.Gates[id].Fanin[0]]
	}
	if err := comb.Validate(); err != nil {
		return nil, fmt.Errorf("seq: frame of %q invalid: %v", c.Name, err)
	}
	cc, err := engine.Compile(comb)
	if err != nil {
		return nil, fmt.Errorf("seq: frame of %q: %v", c.Name, err)
	}
	fr.CC = cc
	return fr, nil
}

// MemoWeight reports the frame's retained size in cache-weight units
// (engine.MemoWeigher): the compiled frame circuit plus everything
// memoized on it (its own sensitization results, cone arenas), so a
// cached sequential handle's weight reflects the whole nest.
func (fr *Frame) MemoWeight() int64 { return fr.CC.Weight() }

// frameKey memoizes the compiled frame on the sequential handle.
type frameKey struct{}

// CompiledFrame returns the combinational frame of a compiled
// sequential circuit, memoized on the handle: repeat analyses of one
// handle (a serving tier's warm path) build and compile the frame
// exactly once.
func CompiledFrame(cc *engine.CompiledCircuit) (*Frame, error) {
	v, err := cc.Memo(frameKey{}, func() (any, error) {
		return BuildFrame(cc.Circuit())
	})
	if err != nil {
		return nil, err
	}
	return v.(*Frame), nil
}
