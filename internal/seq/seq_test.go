package seq

import (
	"context"
	"testing"

	"repro/internal/aserta"
	"repro/internal/charlib"
	"repro/internal/ckt"
	"repro/internal/devmodel"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/sertopt"
	"repro/internal/stats"
	"repro/internal/strike"
)

func coarseLib() *charlib.Library {
	return charlib.NewLibrary(devmodel.Tech70nm(), charlib.CoarseGrid())
}

// miniSeq builds: a -> n1=NOT(a) -> q=DFF(n1); o=NOT(q) is the PO.
// A strike at n1 can only matter by being captured into q; a captured
// flip is visible at o in the capture cycle and dies one cycle later
// (q's next state, NOT(a), does not depend on q).
func miniSeq() *ckt.Circuit {
	c := ckt.New("mini")
	a := c.MustAddGate("a", ckt.Input)
	q := c.MustAddGate("q", ckt.DFF)
	n1 := c.MustAddGate("n1", ckt.Not)
	o := c.MustAddGate("o", ckt.Not)
	c.MustConnect(a, n1)
	c.MustConnect(n1, q)
	c.MustConnect(q, o)
	c.MarkPO(o)
	return c
}

// chainSeq builds a two-stage flop chain:
// a -> n1=NOT(a) -> q1=DFF(n1) -> b1=BUFF(q1) -> q2=DFF(b1) -> o=NOT(q2) (PO).
func chainSeq() *ckt.Circuit {
	c := ckt.New("chain")
	a := c.MustAddGate("a", ckt.Input)
	q1 := c.MustAddGate("q1", ckt.DFF)
	q2 := c.MustAddGate("q2", ckt.DFF)
	n1 := c.MustAddGate("n1", ckt.Not)
	b1 := c.MustAddGate("b1", ckt.Buf)
	o := c.MustAddGate("o", ckt.Not)
	c.MustConnect(a, n1)
	c.MustConnect(n1, q1)
	c.MustConnect(q1, b1)
	c.MustConnect(b1, q2)
	c.MustConnect(q2, o)
	c.MarkPO(o)
	return c
}

func TestBuildFrameS27(t *testing.T) {
	c := gen.S27()
	fr, err := BuildFrame(c)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Comb.Sequential() {
		t.Fatal("frame still has flops")
	}
	if len(fr.Comb.Gates) != len(c.Gates) {
		t.Fatalf("frame gate count %d != %d", len(fr.Comb.Gates), len(c.Gates))
	}
	// IDs are preserved: every frame gate mirrors the original.
	for i, g := range c.Gates {
		fg := fr.Comb.Gates[i]
		if fg.Name != g.Name {
			t.Fatalf("gate %d renamed %q -> %q", i, g.Name, fg.Name)
		}
		want := g.Type
		if want == ckt.DFF {
			want = ckt.Input
		}
		if fg.Type != want {
			t.Fatalf("gate %s type %v -> %v", g.Name, g.Type, fg.Type)
		}
	}
	if fr.NumRealPOs != 1 {
		t.Fatalf("NumRealPOs = %d, want 1", fr.NumRealPOs)
	}
	// s27 has 3 flops with distinct D drivers (G10, G11, G13), so the
	// frame must expose 4 output columns.
	if got := len(fr.Comb.Outputs()); got != 4 {
		t.Fatalf("frame PO columns = %d, want 4", got)
	}
	seen := map[int]bool{}
	for fi, col := range fr.FlopCols {
		if col < fr.NumRealPOs {
			t.Fatalf("flop %d capture column %d collides with a real PO", fi, col)
		}
		if seen[col] {
			t.Fatalf("flop capture columns not distinct: %v", fr.FlopCols)
		}
		seen[col] = true
	}
	// Frame sources: 4 PIs + 3 flop Qs.
	if got := len(fr.Comb.Inputs()); got != 7 {
		t.Fatalf("frame inputs = %d, want 7", got)
	}
}

func TestKnownLatchingStrike(t *testing.T) {
	c := miniSeq()
	lib := coarseLib()
	res, err := Analyze(c, lib, Options{Cycles: 4, Vectors: 512, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flops != 1 {
		t.Fatalf("flops = %d", res.Flops)
	}
	// Every vector lane shows the captured flip at o in the capture
	// cycle and the fault dies the cycle after: exactly one erroneous
	// latched PO value per fault.
	if epf := res.FlopReports[0].ErrorsPerFault; epf != 1 {
		t.Fatalf("ErrorsPerFault = %v, want exactly 1", epf)
	}
	// Closed form: the strike at n1 presents its full generated width
	// at q's capture column (n1 is that column's PO tap), and o's
	// strike presents its width at the real PO. T is large enough here
	// that no clamp binds.
	an := res.Frame
	n1, _ := c.GateByName("n1")
	o, _ := c.GateByName("o")
	T := 300e-12
	wantLatched := an.Cells[n1].FluxWeight() * strike.Clamp(an.GenWidth[n1], T) / 1e-12
	wantDirect := an.Cells[o].FluxWeight() * strike.Clamp(an.GenWidth[o], T) / 1e-12
	if !closeRel(res.LatchedU, wantLatched, 1e-12) {
		t.Fatalf("LatchedU = %v, want %v", res.LatchedU, wantLatched)
	}
	if !closeRel(res.DirectU, wantDirect, 1e-12) {
		t.Fatalf("DirectU = %v, want %v", res.DirectU, wantDirect)
	}
	// A strike at o must not be capturable (no path from o to the D
	// pin), and a strike at n1 must not reach the PO directly (the
	// only path crosses the flop).
	for _, g := range res.Gates {
		switch g.Name {
		case "n1":
			if g.DirectU != 0 || g.LatchedU == 0 {
				t.Fatalf("n1 report = %+v", g)
			}
		case "o":
			if g.LatchedU != 0 || g.DirectU == 0 {
				t.Fatalf("o report = %+v", g)
			}
		}
	}
}

func TestMultiCycleChainPropagation(t *testing.T) {
	c := chainSeq()
	lib := coarseLib()

	// One-cycle horizon: a fault captured in q1 has not yet traversed
	// q2, so it is invisible; a fault in q2 flips o immediately.
	res1, err := Analyze(c, lib, Options{Cycles: 1, Vectors: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e := res1.FlopReports[0].ErrorsPerFault; e != 0 {
		t.Fatalf("K=1: q1 ErrorsPerFault = %v, want 0 (needs two cycles)", e)
	}
	if e := res1.FlopReports[1].ErrorsPerFault; e != 1 {
		t.Fatalf("K=1: q2 ErrorsPerFault = %v, want 1", e)
	}

	// Two cycles suffice for the q1 fault to march through q2 to o,
	// then die; longer horizons change nothing.
	for _, k := range []int{2, 4, 8} {
		res, err := Analyze(c, lib, Options{Cycles: k, Vectors: 256, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if e := res.FlopReports[0].ErrorsPerFault; e != 1 {
			t.Fatalf("K=%d: q1 ErrorsPerFault = %v, want 1", k, e)
		}
		if e := res.FlopReports[1].ErrorsPerFault; e != 1 {
			t.Fatalf("K=%d: q2 ErrorsPerFault = %v, want 1", k, e)
		}
	}
}

// TestSerialWorkerPoolBitIdentical is the acceptance gate: s27 over 4
// cycles must produce bit-identical results for the serial path and
// any worker-pool width, and repeated runs must be deterministic.
func TestSerialWorkerPoolBitIdentical(t *testing.T) {
	c := gen.S27()
	lib := coarseLib()
	base, err := Analyze(c, lib, Options{Cycles: 4, Vectors: 2048, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.LatchedU == 0 || base.DirectU == 0 {
		t.Fatalf("degenerate s27 result: %+v", base)
	}
	for _, workers := range []int{0, 2, 8} {
		got, err := Analyze(c, lib, Options{Cycles: 4, Vectors: 2048, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.U != base.U || got.DirectU != base.DirectU || got.LatchedU != base.LatchedU || got.FIT != base.FIT {
			t.Fatalf("workers=%d: totals differ: %v vs %v", workers, got.U, base.U)
		}
		for i := range base.Gates {
			if got.Gates[i] != base.Gates[i] {
				t.Fatalf("workers=%d: gate %s differs: %+v vs %+v",
					workers, base.Gates[i].Name, got.Gates[i], base.Gates[i])
			}
		}
		for i := range base.FlopReports {
			if got.FlopReports[i] != base.FlopReports[i] {
				t.Fatalf("workers=%d: flop %s differs", workers, base.FlopReports[i].Name)
			}
		}
	}
}

// TestCombinationalEquivalence: on a flop-free circuit the sequential
// engine degenerates to the combinational Eq. 4 exactly — same frame,
// same seeds, bit-identical U with an empty latched component.
func TestCombinationalEquivalence(t *testing.T) {
	c := gen.C17()
	lib := coarseLib()
	res, err := Analyze(c, lib, Options{Cycles: 4, Vectors: 4096, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.LatchedU != 0 || res.Flops != 0 {
		t.Fatalf("combinational circuit grew a latched component: %+v", res)
	}
	cells, err := sertopt.InitialSizing(c, lib, 0, 2e-15)
	if err != nil {
		t.Fatal(err)
	}
	an, err := aserta.Analyze(c, lib, cells, aserta.Config{Vectors: 4096, Seed: 1, POLoad: 2e-15})
	if err != nil {
		t.Fatal(err)
	}
	if res.U != an.U {
		t.Fatalf("sequential U = %v != combinational U = %v", res.U, an.U)
	}
}

func TestAnalyzeContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeContext(ctx, gen.S27(), coarseLib(), Options{Cycles: 2, Vectors: 128}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

func TestInitStateChangesTrace(t *testing.T) {
	// The reset state feeds the fault-free trace; an all-ones reset on
	// s27 must produce a (deterministically) different latched
	// component than the all-zero default only if some flop's fault
	// visibility depends on state — at minimum the analysis must run
	// and stay deterministic.
	c := gen.S27()
	lib := coarseLib()
	init := []bool{true, true, true}
	a, err := Analyze(c, lib, Options{Cycles: 4, Vectors: 1024, Seed: 3, InitState: init})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(c, lib, Options{Cycles: 4, Vectors: 1024, Seed: 3, InitState: init})
	if err != nil {
		t.Fatal(err)
	}
	if a.U != b.U {
		t.Fatal("init-state analysis not deterministic")
	}
	if _, err := Analyze(c, lib, Options{Cycles: 4, InitState: []bool{true}}); err == nil {
		t.Fatal("wrong-length init state accepted")
	}
}

func closeRel(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := b
	if m < 0 {
		m = -m
	}
	if m == 0 {
		return d == 0
	}
	return d <= eps*m
}

func TestInitStateRejectedOnCombinational(t *testing.T) {
	// A bogus reset state must be rejected, not silently ignored, even
	// when the circuit has no flops to apply it to.
	if _, err := Analyze(gen.C17(), coarseLib(), Options{Cycles: 2, Vectors: 64, InitState: []bool{true}}); err == nil {
		t.Fatal("InitState on a flop-free circuit accepted")
	}
}

func TestFaultPropagationCancellable(t *testing.T) {
	// Cancel after the electrical stage is done but while fault
	// propagation would run: a context cancelled mid-analysis must
	// surface as an error rather than burning through all flops.
	ctx, cancel := context.WithCancel(context.Background())
	lib := coarseLib()
	c := gen.S27()
	// Warm the library so the pre-stage checks pass quickly, then race
	// cancellation against the run; either the error is ctx.Err() or
	// (if the run won) the result is valid. Deterministic cancellation
	// is exercised by the pre-cancelled case below.
	if _, err := Analyze(c, lib, Options{Cycles: 1, Vectors: 64}); err != nil {
		t.Fatal(err)
	}
	cancel()
	opts := Options{Cycles: 4, Vectors: 256}.withDefaults()
	if _, err := strike.LogicalPropagate(ctx, engine.MustCompile(c), opts.Cycles, opts.Vectors,
		stats.NewRNG(opts.Seed+faultSeedOffset), opts.InitState, opts.Workers); err == nil {
		t.Fatal("cancelled fault propagation returned no error")
	}
}
