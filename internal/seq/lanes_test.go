package seq

import (
	"testing"

	"repro/internal/gen"
)

// TestSequentialLaneWordsBitIdentical checks the sequential pipeline —
// frame sensitization plus the chunked multi-cycle fault chase — is
// bit-identical across bit-parallel lane widths.
func TestSequentialLaneWordsBitIdentical(t *testing.T) {
	for _, name := range []string{"s27", "s344"} {
		c, err := gen.ISCAS89(name)
		if err != nil {
			t.Fatal(err)
		}
		lib := coarseLib()
		want, err := Analyze(c, lib, Options{Cycles: 6, Vectors: 700, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{4, 8} {
			got, err := Analyze(c, lib, Options{Cycles: 6, Vectors: 700, Seed: 3, LaneWords: w})
			if err != nil {
				t.Fatal(err)
			}
			if got.U != want.U || got.DirectU != want.DirectU || got.LatchedU != want.LatchedU {
				t.Fatalf("%s W=%d: U/Direct/Latched = %v/%v/%v, want %v/%v/%v",
					name, w, got.U, got.DirectU, got.LatchedU, want.U, want.DirectU, want.LatchedU)
			}
			if got.FIT != want.FIT {
				t.Fatalf("%s W=%d: FIT = %v, want %v", name, w, got.FIT, want.FIT)
			}
			for fi := range want.FlopReports {
				if got.FlopReports[fi].ErrorsPerFault != want.FlopReports[fi].ErrorsPerFault {
					t.Fatalf("%s W=%d: E_f[%d] = %v, want %v", name, w, fi,
						got.FlopReports[fi].ErrorsPerFault, want.FlopReports[fi].ErrorsPerFault)
				}
			}
		}
	}
}
