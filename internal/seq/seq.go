// Package seq is the sequential-circuit soft-error engine: it extends
// the paper's combinational ASERTA analysis across flip-flop
// boundaries, opening the ISCAS-89 family as a workload.
//
// The model follows the paper's masking chain, applied per clock
// cycle. A particle strike at gate i in cycle t is
//
//  1. filtered by the Eq. 1 electrical ladder and the Eq. 2 π-split
//     within cycle t's combinational frame (flop outputs are frame
//     sources, D-pin drivers are frame outputs — see BuildFrame);
//  2. latched with the Eq. 3 window probability: at a genuine primary
//     output the expected latched glitch width min(W_ij, Tclk) counts
//     directly (exactly the combinational Eq. 3), while at a flop's D
//     pin the glitch is captured into state with probability
//     min(W_if, Tclk)/Tclk;
//  3. once captured, propagated as a full-cycle logical fault through
//     subsequent frames — bit-parallel fault simulation against the
//     fault-free trace (logicsim.SimulateFrames) — until it reaches a
//     primary output or dies, each wrong latched PO value counting as
//     one full clock period of error width.
//
// The per-cycle unreliability is therefore
//
//	U = Σ_i flux_i/1ps · [ Σ_{p∈PO} min(W_ip,T)
//	                     + Σ_{f∈FF} min(W_if,T) · E_f ]
//
// where E_f is the expected number of erroneous latched PO values per
// captured fault in flop f within the analysis horizon, and the
// whole-circuit soft-error rate follows via serrate.FIT.
//
// Determinism: for a fixed seed the result is bit-identical between
// the serial and worker-pool paths — the sensitization statistics
// reuse logicsim's order-stable arenas and the per-flop fault
// propagation writes disjoint slots.
package seq

import (
	"context"
	"fmt"

	"repro/internal/aserta"
	"repro/internal/charlib"
	"repro/internal/ckt"
	"repro/internal/engine"
	"repro/internal/serrate"
	"repro/internal/sertopt"
	"repro/internal/stats"
	"repro/internal/strike"
	"repro/internal/trace"
)

// DefaultCycles is the default multi-cycle fault-propagation horizon.
const DefaultCycles = 4

// DefaultFluxPerHour is the nominal particle-strike rate per
// flux-weight unit per hour used for the FIT conversion when the
// caller does not supply one.
const DefaultFluxPerHour = 1e-5

// faultSeedOffset decorrelates the fault-propagation RNG stream from
// the sensitization stream derived from the same user seed.
const faultSeedOffset = 0x9e3779b97f4a7c15

// Options tune a sequential analysis. Zero values take the documented
// defaults.
type Options struct {
	// Cycles is the multi-cycle horizon K: captured faults are chased
	// through K frames (default DefaultCycles). Longer horizons count
	// longer-lived state corruption; E_f is censored at the horizon.
	Cycles int
	// Vectors is the random-vector count for both the sensitization
	// statistics and the frame trace (default logicsim.DefaultVectors).
	Vectors int
	// Seed feeds the deterministic RNGs.
	Seed uint64
	// POLoad is the latch input capacitance at every frame output —
	// genuine POs and flop D pins alike (default 2 fF).
	POLoad float64
	// ClockPeriod is T in the Eq. 3 window clamp (default 300 ps).
	ClockPeriod float64
	// FluxPerHour scales the FIT conversion (default
	// DefaultFluxPerHour).
	FluxPerHour float64
	// InitState is the flops' reset state in Circuit.DFFs() order; nil
	// means all zeros.
	InitState []bool
	// Workers bounds the fault-propagation worker pool (<= 0: one per
	// CPU); the sensitization simulation runs through the compiled
	// handle's memo at full parallelism either way. Results are
	// bit-identical for any count.
	Workers int
	// Cells overrides the per-gate cell assignment (indexed by gate
	// ID, which the frame preserves). Nil selects the speed-driven
	// baseline sizing, as ser.Analyze does.
	Cells aserta.Assignment
	// LaneWords is the bit-parallel simulation lane width in 64-bit
	// words (1, 4 or 8; default 1) used by both the frame
	// sensitization analysis and the multi-cycle fault chase. Results
	// are bit-identical across widths.
	LaneWords int
}

func (o Options) withDefaults() Options {
	p := engine.Params{Vectors: o.Vectors, POLoad: o.POLoad, ClockPeriod: o.ClockPeriod, LaneWords: o.LaneWords}
	p.Normalize()
	o.Vectors = p.Vectors
	o.POLoad = p.POLoad
	o.ClockPeriod = p.ClockPeriod
	o.LaneWords = p.LaneWords
	if o.Cycles <= 0 {
		o.Cycles = DefaultCycles
	}
	if o.FluxPerHour <= 0 {
		o.FluxPerHour = DefaultFluxPerHour
	}
	return o
}

// GateReport is one gate's sequential analysis summary.
type GateReport struct {
	Name string
	// U = DirectU + LatchedU is the gate's per-cycle unreliability
	// contribution (ps units, as in the combinational Eq. 3).
	U float64
	// DirectU counts strike glitches latched at genuine primary
	// outputs in the strike cycle.
	DirectU float64
	// LatchedU counts strike glitches captured into flops and
	// re-emitted at primary outputs in later cycles.
	LatchedU float64
	// GenWidth and Delay mirror the combinational report.
	GenWidth, Delay float64
}

// FlopReport is one flip-flop's summary.
type FlopReport struct {
	Name string
	// CaptureU is Σ_i flux_i · min(W_if, T) / 1ps: the flop's
	// per-cycle capture pressure from the electrical stage.
	CaptureU float64
	// ErrorsPerFault is E_f: the expected number of wrong latched PO
	// values caused by one captured fault, within the cycle horizon.
	ErrorsPerFault float64
}

// Result is the full sequential analysis outcome.
type Result struct {
	Circuit string
	Cycles  int
	Flops   int
	// U is the per-cycle circuit unreliability; DirectU and LatchedU
	// are its two components (U = DirectU + LatchedU).
	U, DirectU, LatchedU float64
	// FIT is the whole-circuit soft-error rate (failures per 1e9
	// device-hours) via serrate.FIT.
	FIT float64
	// Gates lists per-gate results for the frame's logic gates, in
	// netlist order.
	Gates []GateReport
	// FlopReports lists per-flop capture pressure and fault
	// visibility, in Circuit.DFFs() order.
	FlopReports []FlopReport
	// Frame exposes the underlying combinational frame analysis.
	Frame *aserta.Analysis
}

// Analyze runs the sequential SER analysis. The library must already
// cover (or lazily characterize) the frame's gate classes;
// ser.AnalyzeSequential wraps this with context-aware
// precharacterization.
func Analyze(c *ckt.Circuit, lib *charlib.Library, opts Options) (*Result, error) {
	return AnalyzeContext(context.Background(), c, lib, opts)
}

// AnalyzeContext is Analyze with cooperative cancellation; it compiles
// the circuit on the fly. A serving tier analyzing one netlist
// repeatedly should compile once and use AnalyzeCompiledContext.
func AnalyzeContext(ctx context.Context, c *ckt.Circuit, lib *charlib.Library, opts Options) (*Result, error) {
	cc, err := engine.Compile(c)
	if err != nil {
		return nil, err
	}
	return AnalyzeCompiledContext(ctx, cc, lib, opts)
}

// AnalyzeCompiledContext runs the sequential analysis against a
// compiled circuit with cooperative cancellation: ctx is checked
// between pipeline stages (frame build, sizing, the frame analysis,
// fault propagation). A stage already running is not interrupted, so
// cancellation latency is bounded by the longest single stage. The
// combinational frame is compiled once and memoized on the handle, so
// repeat analyses (and every strike source across all K cycles within
// one analysis) share one artifact; the frame's sensitization
// statistics — flop Qs are frame sources drawing p=0.5 random words
// exactly like PIs — are memoized per (vectors, seed) the same way.
// Results are bit-identical to AnalyzeContext.
func AnalyzeCompiledContext(ctx context.Context, cc *engine.CompiledCircuit, lib *charlib.Library, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	c := cc.Circuit()
	if opts.InitState != nil && len(opts.InitState) != len(c.DFFs()) {
		// SimulateFrames checks this too, but only when flops exist;
		// validating here keeps a bogus InitState from being silently
		// ignored on combinational circuits.
		return nil, fmt.Errorf("seq: initState has %d bits for %d flops", len(opts.InitState), len(c.DFFs()))
	}
	rec := trace.RecorderFrom(ctx)
	endFrame := trace.StartStage(rec, "seq.frame")
	fr, err := CompiledFrame(cc)
	endFrame()
	if err != nil {
		return nil, err
	}
	cells := opts.Cells
	if cells == nil {
		endSizing := trace.StartStage(rec, "sertopt.sizing")
		cells, err = sertopt.InitialSizing(fr.Comb, lib, 0, opts.POLoad)
		endSizing()
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	an, err := aserta.AnalyzeCompiled(fr.CC, lib, cells, aserta.Config{
		Vectors:     opts.Vectors,
		Seed:        opts.Seed,
		POLoad:      opts.POLoad,
		ClockPeriod: opts.ClockPeriod,
		Spans:       rec,
		LaneWords:   opts.LaneWords,
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// LogicalPropagate: the multi-cycle fault chase, shared with every
	// other pipeline flow through internal/strike.
	endLogical := trace.StartStage(rec, "strike.logical")
	epf, err := strike.LogicalPropagateLanes(ctx, cc, opts.Cycles, opts.Vectors,
		stats.NewRNG(opts.Seed+faultSeedOffset), opts.InitState, opts.Workers, opts.LaneWords)
	endLogical()
	if err != nil {
		return nil, err
	}

	flops := c.DFFs()
	res := &Result{
		Circuit:     c.Name,
		Cycles:      opts.Cycles,
		Flops:       len(flops),
		Frame:       an,
		FlopReports: make([]FlopReport, len(flops)),
	}
	// LatchingWindow + Reduce: genuine-PO columns count directly, flop
	// columns through the capture window times E_f.
	endReduce := trace.StartStage(rec, "strike.reduce_seq")
	defer endReduce()
	T := opts.ClockPeriod
	sc := strike.ReduceSequential(fr.Comb, an.Flux, an.Wij, T, fr.NumRealPOs, fr.FlopCols, epf)
	for fi, id := range flops {
		res.FlopReports[fi] = FlopReport{
			Name:           c.Gates[id].Name,
			CaptureU:       sc.CaptureU[fi],
			ErrorsPerFault: epf[fi],
		}
	}
	for _, g := range fr.Comb.Gates {
		if g.Type.IsSource() {
			continue
		}
		gr := GateReport{
			Name:     g.Name,
			DirectU:  sc.Direct[g.ID],
			LatchedU: sc.Latched[g.ID],
			GenWidth: an.GenWidth[g.ID],
			Delay:    an.Delays[g.ID],
		}
		gr.U = gr.DirectU + gr.LatchedU
		res.Gates = append(res.Gates, gr)
	}
	res.DirectU = sc.DirectU
	res.LatchedU = sc.LatchedU
	res.U = res.DirectU + res.LatchedU
	res.FIT = serrate.FIT(res.U, T, opts.FluxPerHour)
	return res, nil
}

// Summary formats a one-line sequential result.
func (r *Result) Summary() string {
	return fmt.Sprintf("%s: %d flops, %d-cycle horizon: U = %.2f (direct %.2f + latched %.2f), FIT = %.3g",
		r.Circuit, r.Flops, r.Cycles, r.U, r.DirectU, r.LatchedU, r.FIT)
}
