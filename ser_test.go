package ser

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

var (
	sysOnce sync.Once
	testSys *System
)

func sys() *System {
	sysOnce.Do(func() { testSys = NewSystem(CoarseCharacterization) })
	return testSys
}

func TestBenchmarkNames(t *testing.T) {
	names := BenchmarkNames()
	if len(names) < 10 {
		t.Fatalf("only %d benchmarks", len(names))
	}
	for _, n := range names {
		c, err := Benchmark(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", n, err)
		}
	}
}

func TestParseWriteBench(t *testing.T) {
	c, err := Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBench(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ParseBench(strings.NewReader(buf.String()), "c17")
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumGates() != c.NumGates() {
		t.Fatal("round trip changed gate count")
	}
}

func TestAnalyzeC17(t *testing.T) {
	c, _ := Benchmark("c17")
	rep, err := sys().Analyze(c, AnalysisOptions{Vectors: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.U <= 0 {
		t.Fatal("U must be positive")
	}
	if len(rep.Gates) != 6 {
		t.Fatalf("gate reports = %d, want 6", len(rep.Gates))
	}
	soft := rep.Softest(3)
	if len(soft) != 3 {
		t.Fatalf("Softest(3) = %d entries", len(soft))
	}
	if soft[0].U < soft[1].U || soft[1].U < soft[2].U {
		t.Fatal("Softest not sorted")
	}
	if rep.Raw() == nil {
		t.Fatal("Raw analysis missing")
	}
}

func TestOptimizeC17(t *testing.T) {
	c, _ := Benchmark("c17")
	res, err := sys().Optimize(c, OptimizeOptions{
		Vectors:    1000,
		Iterations: 2,
		MaxBasis:   4,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineU <= 0 {
		t.Fatal("baseline U must be positive")
	}
	if res.AreaRatio <= 0 || res.EnergyRatio <= 0 || res.DelayRatio <= 0 {
		t.Fatalf("ratios: %+v", res)
	}
	if res.Raw() == nil {
		t.Fatal("Raw result missing")
	}
}

func TestSummary(t *testing.T) {
	c, _ := Benchmark("c17")
	s := Summary(c)
	for _, frag := range []string{"c17", "5 PIs", "2 POs", "6 gates"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("summary %q missing %q", s, frag)
		}
	}
}

func TestSaveLoadLibrary(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/lib.json"
	s := sys()
	// Force INV characterization through an analysis.
	c, _ := Benchmark("c17")
	if _, err := s.Analyze(c, AnalysisOptions{Vectors: 500, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveLibrary(path); err != nil {
		t.Fatal(err)
	}
	s2 := NewSystem(CoarseCharacterization)
	if err := s2.LoadLibrary(path); err != nil {
		t.Fatal(err)
	}
	rep1, err := s.Analyze(c, AnalysisOptions{Vectors: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := s2.Analyze(c, AnalysisOptions{Vectors: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.U != rep2.U {
		t.Fatalf("library round trip changed analysis: %g vs %g", rep1.U, rep2.U)
	}
}

func TestLoadBenchFileMissing(t *testing.T) {
	if _, err := LoadBenchFile("/nonexistent/foo.bench"); err == nil {
		t.Fatal("missing file accepted")
	}
}
