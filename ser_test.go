package ser

import (
	"bytes"
	"context"
	"os"
	"strings"
	"sync"
	"testing"
)

var (
	sysOnce sync.Once
	testSys *System
)

func sys() *System {
	sysOnce.Do(func() { testSys = NewSystem(CoarseCharacterization) })
	return testSys
}

func TestBenchmarkNames(t *testing.T) {
	names := BenchmarkNames()
	if len(names) < 10 {
		t.Fatalf("only %d benchmarks", len(names))
	}
	for _, n := range names {
		c, err := Benchmark(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", n, err)
		}
	}
}

func TestParseWriteBench(t *testing.T) {
	c, err := Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBench(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ParseBench(strings.NewReader(buf.String()), "c17")
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumGates() != c.NumGates() {
		t.Fatal("round trip changed gate count")
	}
}

func TestAnalyzeC17(t *testing.T) {
	c, _ := Benchmark("c17")
	rep, err := sys().Analyze(c, AnalysisOptions{Vectors: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.U <= 0 {
		t.Fatal("U must be positive")
	}
	if len(rep.Gates) != 6 {
		t.Fatalf("gate reports = %d, want 6", len(rep.Gates))
	}
	soft := rep.Softest(3)
	if len(soft) != 3 {
		t.Fatalf("Softest(3) = %d entries", len(soft))
	}
	if soft[0].U < soft[1].U || soft[1].U < soft[2].U {
		t.Fatal("Softest not sorted")
	}
	if rep.Raw() == nil {
		t.Fatal("Raw analysis missing")
	}
}

func TestOptimizeC17(t *testing.T) {
	c, _ := Benchmark("c17")
	res, err := sys().Optimize(c, OptimizeOptions{
		Vectors:    1000,
		Iterations: 2,
		MaxBasis:   4,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineU <= 0 {
		t.Fatal("baseline U must be positive")
	}
	if res.AreaRatio <= 0 || res.EnergyRatio <= 0 || res.DelayRatio <= 0 {
		t.Fatalf("ratios: %+v", res)
	}
	if res.Raw() == nil {
		t.Fatal("Raw result missing")
	}
}

func TestSummary(t *testing.T) {
	c, _ := Benchmark("c17")
	s := Summary(c)
	for _, frag := range []string{"c17", "5 PIs", "2 POs", "6 gates"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("summary %q missing %q", s, frag)
		}
	}
}

func TestSaveLoadLibrary(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/lib.json"
	s := sys()
	// Force INV characterization through an analysis.
	c, _ := Benchmark("c17")
	if _, err := s.Analyze(c, AnalysisOptions{Vectors: 500, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveLibrary(path); err != nil {
		t.Fatal(err)
	}
	s2 := NewSystem(CoarseCharacterization)
	if err := s2.LoadLibrary(path); err != nil {
		t.Fatal(err)
	}
	rep1, err := s.Analyze(c, AnalysisOptions{Vectors: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := s2.Analyze(c, AnalysisOptions{Vectors: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.U != rep2.U {
		t.Fatalf("library round trip changed analysis: %g vs %g", rep1.U, rep2.U)
	}
}

func TestLoadBenchFileMissing(t *testing.T) {
	if _, err := LoadBenchFile("/nonexistent/foo.bench"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSaveLibraryCreatesParentAtomically(t *testing.T) {
	dir := t.TempDir()
	// Nested parent that does not exist yet: SaveLibrary must create it.
	path := dir + "/cache/nested/lib.json"
	s := sys()
	c, _ := Benchmark("c17")
	if _, err := s.Analyze(c, AnalysisOptions{Vectors: 500, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveLibrary(path); err != nil {
		t.Fatal(err)
	}
	// The write is temp-file + rename: no stray temp files may remain
	// next to the cache.
	entries, err := os.ReadDir(dir + "/cache/nested")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "lib.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("cache dir holds %v, want exactly lib.json", names)
	}
	s2 := NewSystem(CoarseCharacterization)
	if err := s2.LoadLibrary(path); err != nil {
		t.Fatalf("reload of atomically written cache: %v", err)
	}
}

func TestAnalyzeContextCancellation(t *testing.T) {
	c, _ := Benchmark("c17")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys().AnalyzeContext(ctx, c, AnalysisOptions{Vectors: 500}); err == nil {
		t.Fatal("cancelled context accepted")
	}
	if _, err := sys().OptimizeContext(ctx, c, OptimizeOptions{Vectors: 500}); err == nil {
		t.Fatal("cancelled context accepted by optimizer")
	}
	// A live context must behave exactly like the plain calls.
	rep, err := sys().AnalyzeContext(context.Background(), c, AnalysisOptions{Vectors: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys().Analyze(c, AnalysisOptions{Vectors: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.U != plain.U {
		t.Fatalf("AnalyzeContext U = %v, Analyze U = %v (must be bit-identical)", rep.U, plain.U)
	}
}

func TestLibraryCacheSharesSystems(t *testing.T) {
	lc := NewLibraryCache()
	a := lc.System(CoarseCharacterization)
	b := lc.System(CoarseCharacterization)
	if a != b {
		t.Fatal("LibraryCache returned distinct systems for one level")
	}
	d := lc.System(DefaultCharacterization)
	if d == a {
		t.Fatal("LibraryCache shared a system across levels")
	}
	repl := NewSystem(CoarseCharacterization)
	lc.Put(CoarseCharacterization, repl)
	if lc.System(CoarseCharacterization) != repl {
		t.Fatal("Put did not replace the cached system")
	}
}

func TestConcurrentAnalyzeSharedLibrary(t *testing.T) {
	// Concurrent Analyze calls on one System must coalesce
	// characterization (singleflight) and agree bit-for-bit.
	s := NewSystem(CoarseCharacterization)
	c, _ := Benchmark("c17")
	want := int64(0)
	if got := s.Characterizations(); got != want {
		t.Fatalf("cold system reports %d characterizations", got)
	}
	const n = 6
	var wg sync.WaitGroup
	us := make([]float64, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := s.Analyze(c, AnalysisOptions{Vectors: 500, Seed: 9})
			if err != nil {
				errs[i] = err
				return
			}
			us[i] = rep.U
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if us[i] != us[0] {
			t.Fatalf("goroutine %d: U=%v differs from U=%v", i, us[i], us[0])
		}
	}
	// c17 is all NAND2: exactly one characterization despite n
	// concurrent cold-start analyses.
	if got := s.Characterizations(); got != 1 {
		t.Fatalf("%d concurrent analyses ran %d characterizations, want 1", n, got)
	}
}

func TestAnalyzeRejectsSequential(t *testing.T) {
	s := NewSystem(CoarseCharacterization)
	c, err := Benchmark("s27")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Analyze(c, AnalysisOptions{Vectors: 100}); err == nil {
		t.Fatal("combinational Analyze accepted a sequential circuit")
	}
	if _, err := s.Optimize(c, OptimizeOptions{Vectors: 100}); err == nil {
		t.Fatal("Optimize accepted a sequential circuit")
	}
}

func TestAnalyzeSequentialS27(t *testing.T) {
	s := NewSystem(CoarseCharacterization)
	c, err := Benchmark("s27")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.AnalyzeSequential(c, SequentialOptions{Cycles: 4, Vectors: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Flops != 3 || rep.Cycles != 4 {
		t.Fatalf("shape = %d flops, %d cycles", rep.Flops, rep.Cycles)
	}
	if rep.U <= 0 || rep.DirectU <= 0 || rep.LatchedU <= 0 || rep.FIT <= 0 {
		t.Fatalf("degenerate result: %+v", rep)
	}
	if got := rep.DirectU + rep.LatchedU; got != rep.U {
		t.Fatalf("U = %v != direct+latched = %v", rep.U, got)
	}
	if len(rep.Gates) != 10 || len(rep.FlopReports) != 3 {
		t.Fatalf("report sizes: %d gates, %d flops", len(rep.Gates), len(rep.FlopReports))
	}
	soft := rep.Softest(3)
	if len(soft) != 3 || soft[0].U < soft[1].U {
		t.Fatalf("Softest not sorted: %+v", soft)
	}
	// A combinational circuit through the sequential path degenerates
	// to the combinational result.
	c17, err := Benchmark("c17")
	if err != nil {
		t.Fatal(err)
	}
	seqRep, err := s.AnalyzeSequential(c17, SequentialOptions{Cycles: 4, Vectors: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	combRep, err := s.Analyze(c17, AnalysisOptions{Vectors: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seqRep.LatchedU != 0 || seqRep.U != combRep.U {
		t.Fatalf("combinational degeneration broken: seq U=%v latched=%v, comb U=%v",
			seqRep.U, seqRep.LatchedU, combRep.U)
	}
}
